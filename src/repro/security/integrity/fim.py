"""Tripwire-style file integrity monitoring (M7).

Baselines cryptographic hashes of monitored paths; subsequent checks
report additions, deletions and modifications. As the paper describes:

* the baseline database is **encrypted and signed**, with the key
  protected by the TPM, so an attacker who tampers with files cannot
  silently re-baseline;
* paths are classified **immutable vs mutable** — Lesson 3's false-alert
  point: alerting on expected churn (logs, spool, tmp) buries real
  signals, so mutable-path changes are reported separately.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common import crypto
from repro.common.errors import IntegrityError
from repro.osmodel.host import Host

DEFAULT_IMMUTABLE_PREFIXES = ("/boot", "/usr/bin", "/usr/sbin", "/etc")
DEFAULT_MUTABLE_PREFIXES = ("/var/log", "/tmp", "/var/spool")


@dataclass
class FimFinding:
    """One integrity deviation."""

    path: str
    change: str          # "modified" | "added" | "deleted"
    mutable: bool        # change happened under a mutable prefix
    baseline_hash: str = ""
    current_hash: str = ""


@dataclass
class FimReport:
    """One integrity check run."""

    host: str
    findings: List[FimFinding] = field(default_factory=list)

    @property
    def alerts(self) -> List[FimFinding]:
        """Changes to immutable paths: real alerts."""
        return [f for f in self.findings if not f.mutable]

    @property
    def noise(self) -> List[FimFinding]:
        """Changes to mutable paths: expected churn, not alerts."""
        return [f for f in self.findings if f.mutable]

    @property
    def clean(self) -> bool:
        return not self.alerts


class FileIntegrityMonitor:
    """One host's Tripwire-like monitor."""

    def __init__(
        self,
        host: Host,
        immutable_prefixes: Sequence[str] = DEFAULT_IMMUTABLE_PREFIXES,
        mutable_prefixes: Sequence[str] = DEFAULT_MUTABLE_PREFIXES,
        classify_mutable: bool = True,
    ) -> None:
        self.host = host
        self.immutable_prefixes = tuple(immutable_prefixes)
        self.mutable_prefixes = tuple(mutable_prefixes)
        self.classify_mutable = classify_mutable
        self._db_key: Optional[bytes] = None
        self._db_blob: Optional[bytes] = None
        self._db_signature: Optional[bytes] = None
        self._signing_keypair = crypto.RsaKeyPair.generate(bits=512, seed=0xF13)

    # -- baseline management -----------------------------------------------------

    def _monitored_paths(self) -> Dict[str, str]:
        hashes: Dict[str, str] = {}
        for prefix in self.immutable_prefixes + self.mutable_prefixes:
            hashes.update(self.host.fs.snapshot_hashes(prefix))
        return hashes

    def baseline(self) -> int:
        """Capture and seal the baseline; returns the number of files."""
        hashes = self._monitored_paths()
        serialized = json.dumps(hashes, sort_keys=True).encode()
        self._db_key = crypto.random_key(length=32)
        self._db_blob = crypto.aead_encrypt(self._db_key, serialized)
        self._db_signature = self._signing_keypair.sign(self._db_blob)
        if self.host.tpm is not None:
            self.host.tpm.seal(f"fim:{self.host.hostname}", self._db_key,
                               pcr_selection=(0,))
        return len(hashes)

    def _load_baseline(self) -> Dict[str, str]:
        if self._db_blob is None or self._db_key is None:
            raise IntegrityError("no baseline recorded")
        if not self._signing_keypair.public.verify(self._db_blob,
                                                   self._db_signature or b""):
            raise IntegrityError("FIM database signature invalid: tampered DB")
        serialized = crypto.aead_decrypt(self._db_key, self._db_blob)
        return json.loads(serialized)

    def tamper_with_database(self) -> None:
        """Attacker-side helper: corrupt the sealed DB (tests/experiments)."""
        if self._db_blob is not None:
            blob = bytearray(self._db_blob)
            blob[len(blob) // 2] ^= 0xFF
            self._db_blob = bytes(blob)

    # -- checking ----------------------------------------------------------------------

    def check(self) -> FimReport:
        """Compare current state to the sealed baseline.

        :raises IntegrityError: the baseline DB itself fails verification.
        """
        baseline = self._load_baseline()
        current = self._monitored_paths()
        report = FimReport(host=self.host.hostname)

        for path, old_hash in baseline.items():
            new_hash = current.get(path)
            if new_hash is None:
                report.findings.append(FimFinding(
                    path=path, change="deleted",
                    mutable=self._is_mutable(path), baseline_hash=old_hash))
            elif new_hash != old_hash:
                report.findings.append(FimFinding(
                    path=path, change="modified",
                    mutable=self._is_mutable(path),
                    baseline_hash=old_hash, current_hash=new_hash))
        for path, new_hash in current.items():
            if path not in baseline:
                report.findings.append(FimFinding(
                    path=path, change="added",
                    mutable=self._is_mutable(path), current_hash=new_hash))
        return report

    def _is_mutable(self, path: str) -> bool:
        if not self.classify_mutable:
            return False
        return any(path.startswith(prefix) for prefix in self.mutable_prefixes)

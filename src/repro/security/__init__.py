"""The paper's contribution: security-by-design for the GENIO platform.

Sub-packages map one-to-one onto the paper's sections:

* :mod:`repro.security.threatmodel` — Section III (STRIDE, T1-T8, Fig. 3)
* :mod:`repro.security.hardening`   — M1, M2 (OpenSCAP, STIGs, kernel checker)
* :mod:`repro.security.comms`       — M3, M4 (MACsec/GPON encryption, PKI)
* :mod:`repro.security.integrity`   — M5, M6, M7 (Secure Boot, LUKS, FIM)
* :mod:`repro.security.vulnmgmt`    — M8, M12 (scanners, CVE feeds, KBOM)
* :mod:`repro.security.updates`     — M9 (APT GPG, ONIE, binary signing)
* :mod:`repro.security.access`      — M10, M11 (least privilege, benchmarks)
* :mod:`repro.security.appsec`      — M13-M15 (SCA, SAST, DAST)
* :mod:`repro.security.malware`     — M16 (YARA-style scanning)
* :mod:`repro.security.sandbox`     — M17 (LSM policies, PEACH)
* :mod:`repro.security.monitor`     — M18 (Falco-style runtime monitoring)
* :mod:`repro.security.pipeline`    — the end-to-end security-by-design flow
"""

"""Secure DNS (RFC 4033-style) for onboarding endpoints (part of M4).

During onboarding, devices resolve the addresses of registration and
orchestration endpoints. Unsigned DNS lets an on-path attacker redirect
a device to a rogue endpoint; a signed zone makes the forgery detectable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.common import crypto
from repro.common.errors import IntegrityError, NotFoundError


@dataclass(frozen=True)
class SignedRecord:
    """One A-record plus its RRSIG-like signature."""

    name: str
    address: str
    signature: bytes

    def canonical_bytes(self) -> bytes:
        return f"{self.name}={self.address}".encode()


class SignedZone:
    """A DNSSEC-like zone: records signed by the zone key."""

    def __init__(self, origin: str,
                 keypair: Optional[crypto.RsaKeyPair] = None) -> None:
        self.origin = origin
        self._keypair = keypair or crypto.RsaKeyPair.generate(bits=512, seed=0xD25)
        self._records: Dict[str, SignedRecord] = {}

    @property
    def public_key(self) -> crypto.RsaPublicKey:
        """The zone's DNSKEY, distributed as the validator trust anchor."""
        return self._keypair.public

    def add(self, name: str, address: str) -> SignedRecord:
        unsigned = SignedRecord(name=name, address=address, signature=b"")
        record = SignedRecord(
            name=name, address=address,
            signature=self._keypair.sign(unsigned.canonical_bytes()),
        )
        self._records[name] = record
        return record

    def lookup(self, name: str) -> SignedRecord:
        record = self._records.get(name)
        if record is None:
            raise NotFoundError(f"{name} not in zone {self.origin}")
        return record

    def spoof(self, name: str, address: str) -> None:
        """Simulate an on-path forgery: replace a record, keep its old RRSIG."""
        current = self.lookup(name)
        self._records[name] = SignedRecord(
            name=name, address=address, signature=current.signature)


def validate_record(record: SignedRecord,
                    trust_anchor: crypto.RsaPublicKey) -> str:
    """Validate a record against the zone trust anchor.

    Returns the address on success.

    :raises IntegrityError: signature does not cover the presented data.
    """
    if not trust_anchor.verify(record.canonical_bytes(), record.signature):
        raise IntegrityError(
            f"DNSSEC validation failed for {record.name}: forged record"
        )
    return record.address

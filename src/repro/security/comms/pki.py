"""Operator PKI: certificate issuance, validation, revocation (M4).

Certificate-based methods validate device identities before service
provisioning, preventing rogue devices from impersonating legitimate
infrastructure. Certificates bind a subject name (an ONU serial, an OLT
hostname, a cloud endpoint) to a public key, signed by the GENIO
operator CA.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common import crypto
from repro.common.errors import AuthenticationError


@dataclass(frozen=True)
class Certificate:
    """An X.509-like certificate."""

    subject: str
    public_key: crypto.RsaPublicKey
    issuer: str
    serial: int
    not_before: float
    not_after: float
    signature: bytes

    def canonical_bytes(self) -> bytes:
        return (
            f"{self.subject}|{self.public_key.n}|{self.public_key.e}|"
            f"{self.issuer}|{self.serial}|{self.not_before}|{self.not_after}"
        ).encode()


class CertificateAuthority:
    """The GENIO operator CA."""

    def __init__(self, name: str = "GENIO-Operator-CA",
                 keypair: Optional[crypto.RsaKeyPair] = None,
                 validity_seconds: float = 365 * 86400.0) -> None:
        self.name = name
        self.keypair = keypair or crypto.RsaKeyPair.generate(bits=512, seed=0xCA)
        self.validity_seconds = validity_seconds
        self._next_serial = 1
        self._revoked: Dict[int, str] = {}       # serial -> reason
        self.issued: List[Certificate] = []

    @property
    def public_key(self) -> crypto.RsaPublicKey:
        return self.keypair.public

    def issue(self, subject: str, public_key: crypto.RsaPublicKey,
              now: float = 0.0,
              validity_seconds: Optional[float] = None) -> Certificate:
        """Issue a certificate for ``subject``."""
        serial = self._next_serial
        self._next_serial += 1
        lifetime = validity_seconds if validity_seconds is not None else self.validity_seconds
        unsigned = Certificate(
            subject=subject, public_key=public_key, issuer=self.name,
            serial=serial, not_before=now, not_after=now + lifetime,
            signature=b"",
        )
        signed = Certificate(
            subject=unsigned.subject, public_key=unsigned.public_key,
            issuer=unsigned.issuer, serial=unsigned.serial,
            not_before=unsigned.not_before, not_after=unsigned.not_after,
            signature=self.keypair.sign(unsigned.canonical_bytes()),
        )
        self.issued.append(signed)
        return signed

    def enroll_device(self, subject: str, now: float = 0.0,
                      seed: Optional[int] = None) -> Tuple[crypto.RsaKeyPair, Certificate]:
        """Generate a device keypair and issue its certificate in one step."""
        keypair = crypto.RsaKeyPair.generate(bits=512, seed=seed)
        return keypair, self.issue(subject, keypair.public, now=now)

    def revoke(self, serial: int, reason: str = "compromised") -> None:
        self._revoked[serial] = reason

    def is_revoked(self, serial: int) -> bool:
        return serial in self._revoked

    def validate(self, certificate: Certificate, now: float = 0.0) -> None:
        """Full validation: issuer, signature, validity window, revocation.

        :raises AuthenticationError: on any failure.
        """
        if certificate.issuer != self.name:
            raise AuthenticationError(
                f"certificate for {certificate.subject} issued by "
                f"{certificate.issuer!r}, not {self.name!r}"
            )
        unsigned = Certificate(
            subject=certificate.subject, public_key=certificate.public_key,
            issuer=certificate.issuer, serial=certificate.serial,
            not_before=certificate.not_before, not_after=certificate.not_after,
            signature=b"",
        )
        if not self.public_key.verify(unsigned.canonical_bytes(),
                                      certificate.signature):
            raise AuthenticationError(
                f"certificate signature for {certificate.subject} is invalid"
            )
        if not certificate.not_before <= now <= certificate.not_after:
            raise AuthenticationError(
                f"certificate for {certificate.subject} outside validity window"
            )
        if self.is_revoked(certificate.serial):
            raise AuthenticationError(
                f"certificate serial {certificate.serial} is revoked: "
                f"{self._revoked[certificate.serial]}"
            )

    def make_onu_verifier(self, now_fn=lambda: 0.0):
        """Build the verifier the OLT plugs in for certificate-mode activation.

        Returns a callable ``(certificate, challenge, signature) -> subject``
        that validates the certificate chain and the proof-of-possession
        signature over the activation challenge.
        """
        def verify(certificate: object, challenge: bytes,
                   signature: bytes) -> str:
            if not isinstance(certificate, Certificate):
                raise AuthenticationError("not a certificate")
            self.validate(certificate, now=now_fn())
            if not certificate.public_key.verify(challenge, signature):
                raise AuthenticationError(
                    f"{certificate.subject}: challenge signature invalid "
                    "(no proof of key possession)"
                )
            return certificate.subject

        return verify

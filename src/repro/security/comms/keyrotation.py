"""Scheduled GPON key rotation (operational M3).

ITU-T G.987.3 supports key rotation via the key index carried in the GEM
header; GENIO rotates subscriber keys on a schedule so a key compromised
by tampering protects only one rotation window of traffic. The rotation
runs over the *authenticated management channel*: the OLT's key server
rotates, then each affected ONU receives its new key.

The test suite asserts the window property directly: frames captured by
a tap before rotation cannot be decrypted with keys stolen after it, and
vice versa.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.clock import SimClock
from repro.common.sim import PeriodicTask, Scheduler
from repro.pon.network import PonNetwork


@dataclass
class RotationRecord:
    """One completed rotation sweep."""

    at: float
    gem_ports: List[int]
    new_indexes: Dict[int, int]


class KeyRotationService:
    """Rotates every active subscriber's GEM key on a fixed period."""

    def __init__(self, network: PonNetwork, period_s: float = 3600.0,
                 clock: Optional[SimClock] = None) -> None:
        if period_s <= 0:
            raise ValueError("rotation period must be positive")
        self.network = network
        self.period_s = period_s
        self.clock = clock or network.clock
        self.history: List[RotationRecord] = []
        self._scheduled = False

    def rotate_now(self) -> RotationRecord:
        """One sweep: rotate server-side, redistribute to activated ONUs."""
        olt = self.network.olt
        new_indexes: Dict[int, int] = {}
        rotated_ports: List[int] = []
        for serial, gem_port in sorted(olt.provisioned_serials.items()):
            onu = self.network.onus.get(serial)
            if onu is None or not onu.activated:
                continue
            key = olt.key_server.rotate(gem_port)
            onu.decryptor.install_key(gem_port, key.key, key.index)
            new_indexes[gem_port] = key.index
            rotated_ports.append(gem_port)
        record = RotationRecord(at=self.clock.now, gem_ports=rotated_ports,
                                new_indexes=new_indexes)
        self.history.append(record)
        return record

    def schedule(self, scheduler: Scheduler,
                 horizon_s: Optional[float] = None) -> PeriodicTask:
        """Register the rotation sweep as a periodic task on ``scheduler``.

        With no ``horizon_s`` the task rotates forever (fleet/operations
        mode); with one it stops at the horizon, matching :meth:`start`.
        """
        until = None if horizon_s is None else scheduler.now + horizon_s
        task = scheduler.every(self.period_s, self.rotate_now,
                               name=f"keyrotation/{self.network.olt.name}",
                               until=until)
        self._scheduled = True
        return task

    def start(self, horizon_s: float) -> None:
        """Schedule periodic rotation until ``horizon_s`` from now.

        The timers land on the service's clock, so legacy callers that
        advance the clock directly still get their sweeps.
        """
        self.schedule(Scheduler(clock=self.clock), horizon_s)

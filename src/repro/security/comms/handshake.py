"""TLS-1.3-style mutual authentication and key agreement (M4).

Models the onboarding handshake between heterogeneous GENIO nodes (ONU to
OLT, OLT to cloud): both sides present operator-issued certificates,
prove key possession by signing the session transcript, and agree on a
shared secret via RSA key transport (standing in for the (EC)DHE
exchange). The result feeds :func:`repro.pon.macsec.derive_sak` and the
GPON key server.

The handshake also accounts its *cost* — signatures, verifications and
round trips — which the E6 experiment uses to quantify Lesson 2's
"additional engineering efforts and computational resources".
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.common import crypto
from repro.common.errors import AuthenticationError
from repro.security.comms.pki import Certificate, CertificateAuthority


@dataclass
class Endpoint:
    """One handshake participant."""

    name: str
    keypair: crypto.RsaKeyPair
    certificate: Certificate


@dataclass
class HandshakeResult:
    """Agreed state after a successful mutual handshake."""

    client: str
    server: str
    shared_secret: bytes
    round_trips: int
    signatures_made: int
    verifications_made: int

    @property
    def cost_units(self) -> int:
        """Abstract compute cost (1 unit per asymmetric operation)."""
        return self.signatures_made + self.verifications_made


def mutual_handshake(client: Endpoint, server: Endpoint,
                     ca: CertificateAuthority, now: float = 0.0,
                     rng: Optional[random.Random] = None) -> HandshakeResult:
    """Run a mutual-authentication handshake.

    :raises AuthenticationError: either certificate fails validation, a
        transcript signature does not verify, or an identity mismatches.
    """
    rng = rng or random.Random(0x7157)
    signatures = 0
    verifications = 0

    # -- 1. hello + certificate exchange ------------------------------------
    client_nonce = crypto.random_key(rng, length=16)
    server_nonce = crypto.random_key(rng, length=16)
    transcript = (client.name.encode() + client_nonce +
                  server.name.encode() + server_nonce)

    ca.validate(client.certificate, now=now)
    ca.validate(server.certificate, now=now)
    verifications += 2
    if client.certificate.subject != client.name:
        raise AuthenticationError(
            f"client presented certificate for {client.certificate.subject!r}"
        )
    if server.certificate.subject != server.name:
        raise AuthenticationError(
            f"server presented certificate for {server.certificate.subject!r}"
        )

    # -- 2. key transport: client wraps a fresh secret to the server key ------
    pre_master = crypto.random_key(rng)
    wrapped, check = crypto.wrap_key(server.certificate.public_key, pre_master)
    recovered = crypto.unwrap_key(server.keypair, wrapped, check,
                                  key_len=len(pre_master))

    # -- 3. certificate-verify: both sides sign the transcript ----------------
    client_cv = client.keypair.sign(transcript + b"client")
    server_cv = server.keypair.sign(transcript + b"server")
    signatures += 2
    if not client.certificate.public_key.verify(transcript + b"client", client_cv):
        raise AuthenticationError("client transcript signature invalid")
    if not server.certificate.public_key.verify(transcript + b"server", server_cv):
        raise AuthenticationError("server transcript signature invalid")
    verifications += 2

    # -- 4. key schedule -------------------------------------------------------
    shared_secret = crypto.hmac_sha256(recovered, transcript)
    return HandshakeResult(
        client=client.name, server=server.name,
        shared_secret=shared_secret,
        round_trips=2,   # 1-RTT handshake + the activation exchange
        signatures_made=signatures,
        verifications_made=verifications,
    )


def handshake_with_impostor(victim_name: str, impostor: Endpoint,
                            server: Endpoint, ca: CertificateAuthority,
                            now: float = 0.0) -> Tuple[bool, str]:
    """Attempt a handshake claiming ``victim_name`` with an impostor's keys.

    Returns ``(succeeded, reason)`` — used by the T1 experiments to show
    the PKI defeats man-in-the-middle and impersonation during onboarding.
    """
    claimed = Endpoint(name=victim_name, keypair=impostor.keypair,
                       certificate=impostor.certificate)
    try:
        mutual_handshake(claimed, server, ca, now=now)
    except AuthenticationError as exc:
        return False, str(exc)
    return True, "handshake completed under a false identity"

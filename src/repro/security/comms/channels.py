"""Channel provisioning: wiring M3+M4 into the live plant.

``SecureChannelManager`` is the operational layer: it enrolls devices in
the PKI, switches OLT activation to certificate mode, turns on G.987.3
downstream encryption, and establishes MACsec on point-to-point Ethernet
segments with SAKs derived from authenticated handshakes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.common import crypto
from repro.pon.macsec import MacsecPair, derive_sak
from repro.pon.network import PonNetwork
from repro.pon.onu import Onu
from repro.security.comms.handshake import Endpoint, HandshakeResult, mutual_handshake
from repro.security.comms.pki import Certificate, CertificateAuthority


@dataclass
class SecuredLink:
    """A MACsec-protected Ethernet segment."""

    name: str
    macsec: MacsecPair
    handshake: HandshakeResult


class SecureChannelManager:
    """Applies M3+M4 across a GENIO deployment."""

    def __init__(self, ca: Optional[CertificateAuthority] = None) -> None:
        self.ca = ca or CertificateAuthority()
        self.endpoints: Dict[str, Endpoint] = {}
        self.secured_links: Dict[str, SecuredLink] = {}
        self.handshake_costs: int = 0
        self.known_firmware: Dict[str, str] = {}   # serial -> golden hash

    # -- enrollment (M4) ---------------------------------------------------------

    def enroll(self, name: str, now: float = 0.0,
               seed: Optional[int] = None) -> Endpoint:
        """Enroll a node (ONU serial, OLT hostname, cloud endpoint)."""
        keypair, certificate = self.ca.enroll_device(name, now=now, seed=seed)
        endpoint = Endpoint(name=name, keypair=keypair, certificate=certificate)
        self.endpoints[name] = endpoint
        return endpoint

    def enroll_onu(self, onu: Onu, now: float = 0.0,
                   seed: Optional[int] = None) -> Endpoint:
        """Enroll an ONU: install its identity credential on-device and
        record its known-good firmware measurement for activation-time
        attestation."""
        endpoint = self.enroll(onu.serial, now=now, seed=seed)
        onu.provision_identity(endpoint.keypair, endpoint.certificate)
        self.known_firmware[onu.serial] = onu.firmware_hash()
        return endpoint

    # -- PON protection (M3 + M4 on the optical side) --------------------------------

    def secure_pon(self, network: PonNetwork) -> None:
        """Switch a PON to certificate-gated activation + encrypted GEM."""
        network.olt.set_certificate_verifier(
            self.ca.make_onu_verifier(now_fn=lambda: network.clock.now))
        network.olt.enable_encryption()

    def activate_onu_securely(self, network: PonNetwork, onu: Onu,
                              port_index: int = 0) -> int:
        """Run the certificate-mode activation flow for an enrolled ONU."""
        if onu.identity_keypair is None or onu.identity_certificate is None:
            raise ValueError(f"ONU {onu.serial} has no enrolled identity")
        challenge = network.olt.make_challenge()
        signature = onu.identity_keypair.sign(challenge)
        network.olt.provision_serial(onu.serial)
        golden = self.known_firmware.get(onu.serial)
        if golden is not None:
            network.olt.expected_firmware[onu.serial] = golden
        gem_port = network.olt.activate_onu(
            port_index, onu,
            certificate=onu.identity_certificate,
            challenge=challenge,
            challenge_signature=signature,
        )
        network.onus[onu.serial] = onu
        return gem_port

    # -- Ethernet protection (M3 on the electrical side) -------------------------------

    def secure_link(self, link_name: str, a: str, b: str,
                    now: float = 0.0) -> SecuredLink:
        """Authenticate two enrolled nodes and stand up MACsec between them."""
        endpoint_a = self._endpoint(a)
        endpoint_b = self._endpoint(b)
        handshake = mutual_handshake(endpoint_a, endpoint_b, self.ca, now=now)
        self.handshake_costs += handshake.cost_units
        sak = derive_sak(handshake.shared_secret, link_name)
        secured = SecuredLink(name=link_name, macsec=MacsecPair(sak),
                              handshake=handshake)
        self.secured_links[link_name] = secured
        return secured

    def _endpoint(self, name: str) -> Endpoint:
        endpoint = self.endpoints.get(name)
        if endpoint is None:
            raise ValueError(f"{name} is not enrolled; call enroll() first")
        return endpoint

"""M3/M4: securing communication (Section IV-B of the paper).

* :mod:`repro.security.comms.pki` — the operator PKI issuing device
  certificates to ONUs, OLTs and cloud nodes.
* :mod:`repro.security.comms.handshake` — TLS-1.3-style mutual
  authentication and key agreement during onboarding.
* :mod:`repro.security.comms.channels` — turning handshake output into
  live protection: MACsec on point-to-point Ethernet, G.987.3 payload
  encryption on the PON, certificate-gated ONU activation.
* :mod:`repro.security.comms.dnssec` — signed name resolution for
  onboarding endpoints (RFC 4033 reference in the paper).
"""

from repro.security.comms.pki import Certificate, CertificateAuthority
from repro.security.comms.handshake import HandshakeResult, mutual_handshake
from repro.security.comms.channels import SecureChannelManager
from repro.security.comms.dnssec import SignedZone

__all__ = [
    "Certificate",
    "CertificateAuthority",
    "HandshakeResult",
    "mutual_handshake",
    "SecureChannelManager",
    "SignedZone",
]

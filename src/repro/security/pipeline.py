"""The end-to-end security-by-design pipeline.

Applies the paper's mitigations M1-M18, in dependency order, to a
:class:`~repro.platform.genio.GenioDeployment`, and returns a
:class:`SecurityPosture` holding every security artifact (channel
manager, boot provisioner, FIM monitors, scanners, compliance suite,
monitoring engine) so callers can keep operating them — and so the
attack/defense experiments can flip individual mitigations on and off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.platform.genio import GenioDeployment
from repro.security.access.compliance import ComplianceSuite
from repro.security.access.leastprivilege import (
    harden_proxmox, harden_sdn_controller, harden_voltha, tighten_cluster,
)
from repro.security.appsec.dast import CatsFuzzer, NmapScanner
from repro.security.appsec.sast import SastEngine
from repro.security.appsec.sca import ScaScanner
from repro.security.comms.channels import SecureChannelManager
from repro.security.hardening.remediate import HardeningSummary, harden_host
from repro.security.integrity.fim import FileIntegrityMonitor
from repro.security.integrity.secureboot import SecureBootProvisioner
from repro.security.integrity.securestorage import (
    StorageProvisioningResult, provision_secure_storage,
)
from repro.security.malware.yara import YaraScanner, make_admission_hook
from repro.security.monitor.falco import FalcoEngine
from repro.security.sandbox.lsm import default_tenant_policy, install_policy
from repro.security.vulnmgmt.corpus import build_cve_corpus
from repro.security.vulnmgmt.cvedb import CveDatabase
from repro.security.vulnmgmt.feeds import FeedAggregator, genio_feed_landscape
from repro.security.vulnmgmt.hostscan import HostScanner
from repro.security.vulnmgmt.kbom import generate_kbom


@dataclass
class SecurityPosture:
    """Everything the pipeline built, plus per-step outcomes."""

    deployment: GenioDeployment
    hardening: Dict[str, HardeningSummary] = field(default_factory=dict)
    channels: Optional[SecureChannelManager] = None
    boot: Optional[SecureBootProvisioner] = None
    storage: Dict[str, StorageProvisioningResult] = field(default_factory=dict)
    fim: Dict[str, FileIntegrityMonitor] = field(default_factory=dict)
    cvedb: Optional[CveDatabase] = None
    host_scanner: Optional[HostScanner] = None
    patches_applied: Dict[str, int] = field(default_factory=dict)
    feeds: Optional[FeedAggregator] = None
    compliance: Optional[ComplianceSuite] = None
    sca: Optional[ScaScanner] = None
    sast: Optional[SastEngine] = None
    fuzzer: Optional[CatsFuzzer] = None
    port_scanner: Optional[NmapScanner] = None
    malware_scanner: Optional[YaraScanner] = None
    falco: Optional[FalcoEngine] = None
    steps_completed: List[str] = field(default_factory=list)


class SecurityPipeline:
    """Runs the M1-M18 programme over a deployment."""

    def __init__(self, deployment: GenioDeployment,
                 cvedb: Optional[CveDatabase] = None,
                 patch_budget_per_host: int = 50,
                 force_clevis_install: bool = False) -> None:
        self.deployment = deployment
        self.cvedb = cvedb or build_cve_corpus()
        self.patch_budget_per_host = patch_budget_per_host
        self.force_clevis_install = force_clevis_install

    def apply(self) -> SecurityPosture:
        posture = SecurityPosture(deployment=self.deployment, cvedb=self.cvedb)
        self._apply_hardening(posture)            # M1, M2
        self._apply_comms(posture)                # M3, M4
        self._apply_integrity(posture)            # M5, M6, M7
        self._apply_vuln_management(posture)      # M8, M9(policy), M12
        self._apply_access_control(posture)       # M10, M11
        self._apply_appsec(posture)               # M13, M14, M15
        self._apply_runtime_security(posture)     # M16, M17, M18
        return posture

    # -- M1/M2 --------------------------------------------------------------------

    def _apply_hardening(self, posture: SecurityPosture) -> None:
        for host in self.deployment.all_hosts():
            posture.hardening[host.hostname] = harden_host(host)
        posture.steps_completed.append("M1/M2 hardening")

    # -- M3/M4 ----------------------------------------------------------------------

    def _apply_comms(self, posture: SecurityPosture) -> None:
        manager = SecureChannelManager()
        for olt_node in self.deployment.olts:
            pon = olt_node.pon
            manager.secure_pon(pon)
            for serial in sorted(self.deployment.onus):
                onu = self.deployment.onus[serial]
                if onu.serial in pon.olt.provisioned_serials:
                    manager.enroll_onu(onu)
                    manager.activate_onu_securely(pon, onu)
            manager.enroll(olt_node.name)
        manager.enroll(self.deployment.cloud_node.hostname)
        for olt_node in self.deployment.olts:
            manager.secure_link(f"uplink-{olt_node.name}", olt_node.name,
                                self.deployment.cloud_node.hostname)
        # Inter-OLT links (the paper's T1 names them explicitly).
        olt_names = [olt.name for olt in self.deployment.olts]
        for a, b in zip(olt_names, olt_names[1:]):
            manager.secure_link(f"interolt-{a}--{b}", a, b)
        posture.channels = manager
        posture.steps_completed.append("M3/M4 communication security")

    # -- M5/M6/M7 ----------------------------------------------------------------------

    def _apply_integrity(self, posture: SecurityPosture) -> None:
        provisioner = SecureBootProvisioner()
        for host in self.deployment.all_hosts():
            provisioner.provision(host)
            provisioner.record_golden_state(host)
            posture.storage[host.hostname] = provision_secure_storage(
                host, force_install=self.force_clevis_install)
            monitor = FileIntegrityMonitor(host)
            monitor.baseline()
            posture.fim[host.hostname] = monitor
        posture.boot = provisioner
        posture.steps_completed.append("M5/M6/M7 integrity")

    # -- M8/M9/M12 ----------------------------------------------------------------------

    def _apply_vuln_management(self, posture: SecurityPosture) -> None:
        scanner = HostScanner(self.cvedb)
        for host in self.deployment.all_hosts():
            host.require_signed_apt()     # the M9 APT policy
            applied, _ = scanner.patch_prioritized(
                host, budget=self.patch_budget_per_host)
            posture.patches_applied[host.hostname] = applied
        for olt_node in self.deployment.olts:
            olt_node.hypervisor.patch("CVE-2019-14378")
        posture.host_scanner = scanner
        posture.feeds = genio_feed_landscape()
        posture.steps_completed.append("M8/M9/M12 vulnerability management")

    # -- M10/M11 -----------------------------------------------------------------------

    def _apply_access_control(self, posture: SecurityPosture) -> None:
        deployment = self.deployment
        tighten_cluster(deployment.cloud_cluster)
        harden_sdn_controller(deployment.sdn)
        harden_voltha(deployment.voltha)
        harden_proxmox(deployment.proxmox)
        posture.compliance = ComplianceSuite(
            deployment.cloud_cluster,
            runtimes=[vm.runtime for vm in deployment.worker_vms()])
        posture.steps_completed.append("M10/M11 access control & compliance")

    # -- M13/M14/M15 ---------------------------------------------------------------------

    def _apply_appsec(self, posture: SecurityPosture) -> None:
        posture.sca = ScaScanner(self.cvedb)
        posture.sast = SastEngine()
        posture.fuzzer = CatsFuzzer()
        posture.port_scanner = NmapScanner()
        posture.steps_completed.append("M13/M14/M15 application security")

    # -- M16/M17/M18 ----------------------------------------------------------------------

    def _apply_runtime_security(self, posture: SecurityPosture) -> None:
        scanner = YaraScanner()
        posture.malware_scanner = scanner
        for vm in self.deployment.worker_vms():
            vm.runtime.add_admission_hook(make_admission_hook(scanner))
            install_policy(vm.runtime, default_tenant_policy("tenant-*"))
        engine = FalcoEngine()
        engine.attach(self.deployment.bus)
        posture.falco = engine
        posture.steps_completed.append("M16/M17/M18 runtime security")

"""The end-to-end security-by-design pipeline.

Applies the paper's mitigations M1-M18, in dependency order, to a
:class:`~repro.platform.genio.GenioDeployment`, and returns a
:class:`SecurityPosture` holding every security artifact (channel
manager, boot provisioner, FIM monitors, scanners, compliance suite,
monitoring engine) so callers can keep operating them.

The pipeline is organised around a **public step registry**: each
mitigation group is a :class:`PipelineStep` with a name, the mitigation
ids it implements, and an apply function. Experiments flip individual
mitigations on and off through :meth:`SecurityPipeline.apply`'s
``skip=``/``only=`` selectors (accepting step names or mitigation ids
like ``"M18"``) instead of reaching into private methods, and can
register their own steps with :meth:`SecurityPipeline.register_step`.

Every applied step is telemetered: one tracing span per step (wall and
simulated duration) plus the ``pipeline_step_duration_seconds`` and
``pipeline_steps_total`` metrics in the active registry.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common import telemetry
from repro.common.telemetry import Tracer
from repro.platform.genio import GenioDeployment
from repro.security.access.compliance import ComplianceSuite
from repro.security.access.leastprivilege import (
    harden_proxmox, harden_sdn_controller, harden_voltha, tighten_cluster,
)
from repro.security.appsec.dast import CatsFuzzer, NmapScanner
from repro.security.appsec.sast import SastEngine
from repro.security.appsec.sca import ScaScanner
from repro.security.comms.channels import SecureChannelManager
from repro.security.hardening.remediate import HardeningSummary, harden_host
from repro.security.integrity.fim import FileIntegrityMonitor
from repro.security.integrity.secureboot import SecureBootProvisioner
from repro.security.integrity.securestorage import (
    StorageProvisioningResult, provision_secure_storage,
)
from repro.security.malware.yara import YaraScanner, make_admission_hook
from repro.security.monitor.falco import FalcoEngine
from repro.security.sandbox.lsm import default_tenant_policy, install_policy
from repro.security.vulnmgmt.corpus import build_cve_corpus
from repro.security.vulnmgmt.cvedb import CveDatabase
from repro.security.vulnmgmt.feeds import FeedAggregator, genio_feed_landscape
from repro.security.vulnmgmt.hostscan import HostScanner
from repro.security.vulnmgmt.kbom import generate_kbom


@dataclass
class SecurityPosture:
    """Everything the pipeline built, plus per-step outcomes."""

    deployment: GenioDeployment
    hardening: Dict[str, HardeningSummary] = field(default_factory=dict)
    channels: Optional[SecureChannelManager] = None
    boot: Optional[SecureBootProvisioner] = None
    storage: Dict[str, StorageProvisioningResult] = field(default_factory=dict)
    fim: Dict[str, FileIntegrityMonitor] = field(default_factory=dict)
    cvedb: Optional[CveDatabase] = None
    host_scanner: Optional[HostScanner] = None
    patches_applied: Dict[str, int] = field(default_factory=dict)
    feeds: Optional[FeedAggregator] = None
    compliance: Optional[ComplianceSuite] = None
    sca: Optional[ScaScanner] = None
    sast: Optional[SastEngine] = None
    fuzzer: Optional[CatsFuzzer] = None
    port_scanner: Optional[NmapScanner] = None
    malware_scanner: Optional[YaraScanner] = None
    falco: Optional[FalcoEngine] = None
    steps_completed: List[str] = field(default_factory=list)
    steps_skipped: List[str] = field(default_factory=list)


# A step body receives the pipeline (configuration, deployment, cvedb)
# and the posture it mutates.
StepFn = Callable[["SecurityPipeline", SecurityPosture], None]


@dataclass(frozen=True)
class PipelineStep:
    """One registered mitigation group.

    :param name: stable public name, e.g. ``"M1/M2 hardening"`` — this is
        what lands in :attr:`SecurityPosture.steps_completed`.
    :param mitigations: mitigation ids the step implements (``"M1"``...),
        each usable as a ``skip=``/``only=`` selector.
    :param apply_fn: the step body.
    """

    name: str
    mitigations: Tuple[str, ...]
    apply_fn: StepFn
    description: str = ""

    def matches(self, token: str) -> bool:
        """True if ``token`` selects this step (by name or mitigation id)."""
        return token == self.name or token in self.mitigations


# ---------------------------------------------------------------------------
# The default step bodies (public module-level functions, in dependency
# order: hardening before integrity baselines, comms before runtime, etc.)
# ---------------------------------------------------------------------------


def step_hardening(pipeline: "SecurityPipeline",
                   posture: SecurityPosture) -> None:
    """M1/M2: OS and kernel hardening on every host."""
    for host in pipeline.deployment.all_hosts():
        posture.hardening[host.hostname] = harden_host(host)


def step_comms(pipeline: "SecurityPipeline",
               posture: SecurityPosture) -> None:
    """M3/M4: PON encryption, PKI activation, MACsec uplinks."""
    deployment = pipeline.deployment
    manager = SecureChannelManager()
    for olt_node in deployment.olts:
        pon = olt_node.pon
        manager.secure_pon(pon)
        for serial in sorted(deployment.onus):
            onu = deployment.onus[serial]
            if onu.serial in pon.olt.provisioned_serials:
                manager.enroll_onu(onu)
                manager.activate_onu_securely(pon, onu)
        manager.enroll(olt_node.name)
    manager.enroll(deployment.cloud_node.hostname)
    for olt_node in deployment.olts:
        manager.secure_link(f"uplink-{olt_node.name}", olt_node.name,
                            deployment.cloud_node.hostname)
    # Inter-OLT links (the paper's T1 names them explicitly).
    olt_names = [olt.name for olt in deployment.olts]
    for a, b in zip(olt_names, olt_names[1:]):
        manager.secure_link(f"interolt-{a}--{b}", a, b)
    posture.channels = manager


def step_integrity(pipeline: "SecurityPipeline",
                   posture: SecurityPosture) -> None:
    """M5/M6/M7: secure boot, encrypted storage, FIM baselines."""
    provisioner = SecureBootProvisioner()
    for host in pipeline.deployment.all_hosts():
        provisioner.provision(host)
        provisioner.record_golden_state(host)
        posture.storage[host.hostname] = provision_secure_storage(
            host, force_install=pipeline.force_clevis_install)
        monitor = FileIntegrityMonitor(host)
        monitor.baseline()
        posture.fim[host.hostname] = monitor
    posture.boot = provisioner


def step_vuln_management(pipeline: "SecurityPipeline",
                         posture: SecurityPosture) -> None:
    """M8/M9/M12: scan + patch hosts, signed APT policy, feed landscape."""
    scanner = HostScanner(pipeline.cvedb)
    for host in pipeline.deployment.all_hosts():
        host.require_signed_apt()     # the M9 APT policy
        applied, _ = scanner.patch_prioritized(
            host, budget=pipeline.patch_budget_per_host)
        posture.patches_applied[host.hostname] = applied
    for olt_node in pipeline.deployment.olts:
        olt_node.hypervisor.patch("CVE-2019-14378")
    posture.host_scanner = scanner
    posture.feeds = genio_feed_landscape()


def step_access_control(pipeline: "SecurityPipeline",
                        posture: SecurityPosture) -> None:
    """M10/M11: least privilege across the middleware, compliance suite."""
    deployment = pipeline.deployment
    tighten_cluster(deployment.cloud_cluster)
    harden_sdn_controller(deployment.sdn)
    harden_voltha(deployment.voltha)
    harden_proxmox(deployment.proxmox)
    posture.compliance = ComplianceSuite(
        deployment.cloud_cluster,
        runtimes=[vm.runtime for vm in deployment.worker_vms()])


def step_appsec(pipeline: "SecurityPipeline",
                posture: SecurityPosture) -> None:
    """M13/M14/M15: SCA, SAST, fuzzing and port-audit tooling."""
    posture.sca = ScaScanner(pipeline.cvedb)
    posture.sast = SastEngine()
    posture.fuzzer = CatsFuzzer()
    posture.port_scanner = NmapScanner()


def step_runtime_security(pipeline: "SecurityPipeline",
                          posture: SecurityPosture) -> None:
    """M16/M17/M18: admission gate, LSM sandboxing, runtime monitoring."""
    scanner = YaraScanner()
    posture.malware_scanner = scanner
    for vm in pipeline.deployment.worker_vms():
        vm.runtime.add_admission_hook(make_admission_hook(scanner))
        install_policy(vm.runtime, default_tenant_policy("tenant-*"))
    engine = FalcoEngine(publish_alerts=True)
    engine.attach(pipeline.deployment.bus)
    posture.falco = engine


def default_steps() -> List[PipelineStep]:
    """The M1-M18 programme as registered steps, in dependency order."""
    return [
        PipelineStep("M1/M2 hardening", ("M1", "M2"), step_hardening,
                     "OS/kernel hardening (OpenSCAP, STIG, sysctl)"),
        PipelineStep("M3/M4 communication security", ("M3", "M4"), step_comms,
                     "GPON encryption, PKI ONU activation, MACsec uplinks"),
        PipelineStep("M5/M6/M7 integrity", ("M5", "M6", "M7"), step_integrity,
                     "secure/measured boot, LUKS storage, Tripwire FIM"),
        PipelineStep("M8/M9/M12 vulnerability management",
                     ("M8", "M9", "M12"), step_vuln_management,
                     "host scanning + prioritised patching, signed updates"),
        PipelineStep("M10/M11 access control & compliance",
                     ("M10", "M11"), step_access_control,
                     "RBAC/ACL least privilege, compliance checkers"),
        PipelineStep("M13/M14/M15 application security",
                     ("M13", "M14", "M15"), step_appsec,
                     "SCA, SAST, DAST tooling"),
        PipelineStep("M16/M17/M18 runtime security",
                     ("M16", "M17", "M18"), step_runtime_security,
                     "malware gate, LSM sandboxing, Falco monitoring"),
    ]


class SecurityPipeline:
    """Runs the M1-M18 programme over a deployment.

    The programme is the public :attr:`steps` registry; ``apply()`` with
    no arguments runs every step (backward compatible with the original
    monolithic pipeline), while ``apply(skip=...)`` / ``apply(only=...)``
    ablate individual mitigations for experiments.
    """

    def __init__(self, deployment: GenioDeployment,
                 cvedb: Optional[CveDatabase] = None,
                 patch_budget_per_host: int = 50,
                 force_clevis_install: bool = False,
                 steps: Optional[Sequence[PipelineStep]] = None,
                 metrics: Optional[telemetry.MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None) -> None:
        self.deployment = deployment
        self.cvedb = cvedb or build_cve_corpus()
        self.patch_budget_per_host = patch_budget_per_host
        self.force_clevis_install = force_clevis_install
        self.steps: List[PipelineStep] = list(
            steps if steps is not None else default_steps())
        self._metrics = metrics if metrics is not None \
            else telemetry.active_registry()
        self.tracer = tracer if tracer is not None \
            else Tracer(clock=deployment.clock)
        if self._metrics is not None:
            self._step_duration = self._metrics.histogram(
                "pipeline_step_duration_seconds",
                "Wall-clock duration of one pipeline step.", ("step",))
            self._steps_counter = self._metrics.counter(
                "pipeline_steps_total", "Pipeline steps run, by outcome.",
                ("step", "outcome"))

    # -- the registry ----------------------------------------------------------

    def step_names(self) -> List[str]:
        return [step.name for step in self.steps]

    def step(self, token: str) -> PipelineStep:
        """Look a step up by name or mitigation id."""
        for step in self.steps:
            if step.matches(token):
                return step
        raise KeyError(f"no pipeline step matches {token!r}; "
                       f"registered: {self.step_names()}")

    def register_step(self, step: PipelineStep, *,
                      before: Optional[str] = None,
                      after: Optional[str] = None) -> None:
        """Insert a step; by default appended, else anchored to a neighbour."""
        if before is not None and after is not None:
            raise ValueError("give at most one of before=/after=")
        if any(existing.name == step.name for existing in self.steps):
            raise ValueError(f"step {step.name!r} already registered")
        if before is not None:
            index = self.steps.index(self.step(before))
        elif after is not None:
            index = self.steps.index(self.step(after)) + 1
        else:
            index = len(self.steps)
        self.steps.insert(index, step)

    def remove_step(self, token: str) -> PipelineStep:
        """Unregister and return the step matching ``token``."""
        step = self.step(token)
        self.steps.remove(step)
        return step

    def _select(self, skip: Optional[Iterable[str]],
                only: Optional[Iterable[str]]) -> List[PipelineStep]:
        if skip is not None and only is not None:
            raise ValueError("give at most one of skip=/only=")
        tokens = list(skip if skip is not None else only or [])
        for token in tokens:
            self.step(token)     # raises KeyError on unknown selectors
        if only is not None:
            return [s for s in self.steps
                    if any(s.matches(t) for t in tokens)]
        if skip is not None:
            return [s for s in self.steps
                    if not any(s.matches(t) for t in tokens)]
        return list(self.steps)

    # -- execution -------------------------------------------------------------

    def apply(self, skip: Optional[Iterable[str]] = None,
              only: Optional[Iterable[str]] = None) -> SecurityPosture:
        """Run the selected steps in registry order.

        :param skip: step names or mitigation ids to leave out.
        :param only: run just the steps matching these selectors.
        :raises KeyError: a selector matches no registered step.
        """
        selected = self._select(skip, only)
        posture = SecurityPosture(deployment=self.deployment, cvedb=self.cvedb)
        posture.steps_skipped = [step.name for step in self.steps
                                 if step not in selected]
        for step in selected:
            self._run_step(step, posture)
        return posture

    def _run_step(self, step: PipelineStep, posture: SecurityPosture) -> None:
        started = time.perf_counter()
        outcome = "ok"
        with self.tracer.span(step.name, mitigations=step.mitigations):
            try:
                step.apply_fn(self, posture)
            except Exception:
                outcome = "error"
                raise
            finally:
                if self._metrics is not None:
                    self._step_duration.observe(
                        time.perf_counter() - started, step=step.name)
                    self._steps_counter.inc(step=step.name, outcome=outcome)
        posture.steps_completed.append(step.name)

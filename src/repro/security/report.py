"""Platform security report generator.

Collates the state of every mitigation into one operator-facing document
— the kind of artifact the GENIO project would hand a CE-marking / Cyber
Resilience Act assessor: threat coverage, hardening pass rates, integrity
posture, vulnerability backlog, compliance results and runtime-security
activity, with an overall readiness verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common import telemetry
from repro.security.pipeline import SecurityPosture
from repro.security.threatmodel import build_genio_threat_model
from repro.security.threatmodel.matrix import coverage_matrix
from repro.security.threatmodel.regulatory import assess_cra_readiness
from repro.security.threatmodel.risk import (
    ALL_MITIGATIONS, assess_residual_risk, portfolio_risk,
)


@dataclass
class ReportSection:
    title: str
    lines: List[str] = field(default_factory=list)
    satisfied: bool = True


@dataclass
class SecurityReport:
    """The assembled report."""

    sections: List[ReportSection] = field(default_factory=list)

    @property
    def ready(self) -> bool:
        return all(section.satisfied for section in self.sections)

    def render(self) -> str:
        out = ["GENIO PLATFORM SECURITY REPORT", "=" * 64, ""]
        for section in self.sections:
            marker = "OK " if section.satisfied else "GAP"
            out.append(f"[{marker}] {section.title}")
            out.extend(f"      {line}" for line in section.lines)
            out.append("")
        verdict = ("READY: all mitigation areas satisfied"
                   if self.ready else
                   "NOT READY: gaps listed above require remediation")
        out.append(verdict)
        return "\n".join(out)


def telemetry_section(
        metrics: telemetry.MetricsRegistry) -> ReportSection:
    """Summarise the measurement substrate's key series for the assessor.

    Lesson 8 demands that control overhead be continuously monitored;
    this section proves the monitoring exists and is live.
    """
    key_series = [
        ("bus events", "bus_events_total"),
        ("PON frames", "pon_frames_total"),
        ("MACsec operations", "macsec_frames_total"),
        ("vulnerability scans", "vuln_scans_total"),
        ("patches applied", "vuln_patches_applied_total"),
        ("pipeline steps timed", "pipeline_step_duration_seconds"),
        ("falco alerts", "falco_alerts_total"),
    ]
    lines = [f"{label}: {metrics.total(name):.0f}"
             for label, name in key_series if name in metrics]
    if not lines:
        lines = ["no instrumented series recorded yet"]
    return ReportSection("Observability (telemetry substrate)", lines,
                         satisfied=bool(metrics.families()))


def generate_report(
        posture: SecurityPosture,
        metrics: Optional[telemetry.MetricsRegistry] = None) -> SecurityReport:
    """Build the report from a pipeline posture.

    ``metrics`` defaults to the active process-wide registry; pass an
    explicit registry to report on an isolated experiment's telemetry.
    """
    report = SecurityReport()
    deployment = posture.deployment
    if metrics is None:
        metrics = telemetry.active_registry()

    # -- threat coverage --------------------------------------------------------
    model = build_genio_threat_model()
    unmitigated = model.unmitigated()
    section = ReportSection(
        "Threat model coverage (STRIDE, T1-T8)",
        [f"{len(model.threats())} threats modeled, "
         f"{len(coverage_matrix())} threat-mitigation pairings, "
         f"{len(unmitigated)} unmitigated"],
        satisfied=not unmitigated)
    report.sections.append(section)

    # -- hardening -----------------------------------------------------------------
    rates = [(hostname, summary.pass_rate_after.get("onl-scap", 0.0))
             for hostname, summary in posture.hardening.items()]
    weakest = min(rates, key=lambda kv: kv[1]) if rates else ("n/a", 0.0)
    report.sections.append(ReportSection(
        "M1/M2 host and kernel hardening",
        [f"{hostname}: SCAP {summary.pass_rate_after.get('onl-scap', 0):.0%}, "
         f"kernel {summary.pass_rate_after.get('kernel', 0):.0%}, "
         f"manual rules: {len(set(summary.manual_rules))}"
         for hostname, summary in posture.hardening.items()],
        satisfied=bool(rates) and weakest[1] >= 0.9))

    # -- communications --------------------------------------------------------------
    channels = posture.channels
    pon_secured = all(olt.pon.olt.encryption_enabled
                      and olt.pon.olt.auth_mode == "certificate"
                      for olt in deployment.olts)
    report.sections.append(ReportSection(
        "M3/M4 communication security",
        [f"PON ports encrypted + certificate-gated: {pon_secured}",
         f"MACsec uplinks established: "
         f"{len(channels.secured_links) if channels else 0}",
         f"enrolled identities: {len(channels.endpoints) if channels else 0}"],
        satisfied=pon_secured and bool(channels and channels.secured_links)))

    # -- integrity ---------------------------------------------------------------------
    attested = []
    if posture.boot is not None:
        for host in deployment.all_hosts():
            attested.append(posture.boot.attest_host(host).trusted)
    storage_lines = [
        f"{hostname}: unlock={result.unlock_mode}"
        + (" (conflict risk)" if result.conflict_risk else "")
        for hostname, result in posture.storage.items()]
    report.sections.append(ReportSection(
        "M5/M6/M7 integrity",
        [f"hosts attesting trusted: {sum(attested)}/{len(attested)}"]
        + storage_lines
        + [f"FIM baselines active: {len(posture.fim)}"],
        satisfied=bool(attested) and all(attested) and bool(posture.fim)))

    # -- vulnerability management ----------------------------------------------------------
    backlog_lines = []
    satisfied_vuln = True
    if posture.host_scanner is not None:
        for host in deployment.all_hosts():
            scan = posture.host_scanner.scan(host)
            critical = len(scan.critical_or_exploitable)
            backlog_lines.append(
                f"{host.hostname}: {len(scan.findings)} open findings "
                f"({critical} critical/exploitable)")
            if critical > 5:
                satisfied_vuln = False
    report.sections.append(ReportSection(
        "M8/M9/M12 vulnerability management",
        backlog_lines
        + [f"patches applied: {sum(posture.patches_applied.values())}",
           "update channels: APT signatures required, ONIE verified"],
        satisfied=satisfied_vuln))

    # -- access control & compliance ----------------------------------------------------------
    compliance_lines = []
    satisfied_compliance = True
    if posture.compliance is not None:
        for name, result in posture.compliance.run().items():
            compliance_lines.append(
                f"{name}: {result.passed}/{len(result.checks)}")
            if name in ("kube-bench", "kube-hunter") and result.pass_rate < 1.0:
                satisfied_compliance = False
    report.sections.append(ReportSection(
        "M10/M11 access control & compliance",
        compliance_lines, satisfied=satisfied_compliance))

    # -- residual risk --------------------------------------------------------------------------
    applied = ALL_MITIGATIONS if len(posture.steps_completed) >= 7 else []
    assessments = assess_residual_risk(applied)
    portfolio = portfolio_risk(assessments)
    top = assessments[0]
    report.sections.append(ReportSection(
        "Residual risk posture",
        [f"portfolio risk {portfolio['inherent_total']:.0f} -> "
         f"{portfolio['residual_total']:.1f} "
         f"({portfolio['overall_reduction']:.0%} reduction)",
         f"threats still above MEDIUM: {portfolio['threats_above_medium']}",
         f"highest residual: {top.threat_id} {top.name} "
         f"(score {top.residual_score})"],
        satisfied=portfolio["threats_above_medium"] == 0))

    # -- regulatory alignment (the project's stated objective) ------------------------------------
    cra = assess_cra_readiness(applied)
    counts = cra.counts()
    report.sections.append(ReportSection(
        "Cyber Resilience Act alignment",
        [f"{counts['satisfied']}/{len(cra.statuses)} essential requirements "
         f"satisfied, {counts['partial']} partial, "
         f"{counts['unsatisfied']} unsatisfied"],
        satisfied=cra.ready))

    # -- runtime security ------------------------------------------------------------------------
    falco = posture.falco
    report.sections.append(ReportSection(
        "M16/M17/M18 runtime security",
        [f"malware admission gate: "
         f"{'active' if posture.malware_scanner else 'missing'}",
         f"monitor attached: {falco is not None}, "
         f"events={falco.events_processed if falco else 0}, "
         f"alerts={len(falco.alerts) if falco else 0}"],
        satisfied=posture.malware_scanner is not None and falco is not None))

    # -- observability ---------------------------------------------------------------------------
    if metrics is not None:
        report.sections.append(telemetry_section(metrics))

    return report

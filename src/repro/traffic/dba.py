"""GPON-style dynamic bandwidth allocation (DBA) for the upstream PON.

Upstream GPON is time-division multiplexed: ONUs may only transmit in
slots the OLT grants, and the DBA algorithm decides each cycle how the
shared upstream capacity is split across T-CONTs (transmission
containers, ITU-T G.984.3 — one queue per ONU x traffic class). This
module models that grant loop in bytes-per-cycle terms:

* :class:`TCont` — one upstream queue with a priority (0 = fixed ... 3 =
  best-effort, mirroring T-CONT types 1-4), a weight for fair sharing
  within its priority tier, and FIFO request backlog;
* :class:`DbaScheduler` — the OLT-side allocator. The default ``fair``
  policy is strict priority across tiers with weighted progressive
  filling inside a tier, plus a small guaranteed quantum for every
  backlogged T-CONT so low-priority queues are never starved outright.
  The ``proportional`` policy models the *absence* of coordinated DBA:
  capacity splits in proportion to offered backlog, which is exactly how
  a flooding tenant monopolizes an unscheduled shared medium (T8).

Invariants (property-tested in ``tests/test_traffic.py``):

* granted bytes never exceed cycle capacity;
* the scheduler is work-conserving — it grants
  ``min(capacity, total_backlog)`` exactly;
* under ``fair``, every backlogged T-CONT receives a non-zero grant
  whenever capacity allows at least one byte each (starvation freedom).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.common.events import EventBus
from repro.traffic.profiles import Request

__all__ = ["TCont", "CompletedRequest", "DbaScheduler"]

POLICIES = ("fair", "proportional")


@dataclass(frozen=True)
class CompletedRequest:
    """One request fully carried upstream, with its queueing latency."""

    request: Request
    completed_at: float

    @property
    def latency_s(self) -> float:
        return self.completed_at - self.request.issued_at


class TCont:
    """One upstream transmission container: a prioritised FIFO byte queue."""

    def __init__(self, alloc_id: int, serial: str, tenant: str,
                 priority: int = 2, weight: float = 1.0) -> None:
        if not 0 <= priority <= 3:
            raise ValueError("priority must be 0 (fixed) .. 3 (best effort)")
        if weight <= 0:
            raise ValueError("weight must be positive")
        self.alloc_id = alloc_id
        self.serial = serial
        self.tenant = tenant
        self.priority = priority
        self.weight = float(weight)
        self.queue: Deque[Request] = deque()
        self.queued_bytes = 0
        self._head_sent = 0          # bytes of the head request already granted
        self.offered_bytes = 0
        self.granted_bytes = 0

    @property
    def tcont_type(self) -> int:
        """The G.984.3 T-CONT type this priority maps to (1..4)."""
        return self.priority + 1

    def offer(self, request: Request) -> None:
        """Enqueue one upstream request."""
        self.queue.append(request)
        self.queued_bytes += request.size_bytes
        self.offered_bytes += request.size_bytes

    def drain(self, granted: int, now: float) -> Tuple[int, List[CompletedRequest]]:
        """Transmit up to ``granted`` bytes; returns (sent, completions).

        Requests complete only when their last byte is carried; a grant
        that ends mid-request leaves the remainder at the head of the
        queue for the next cycle (as GEM fragmentation allows).
        """
        if granted < 0:
            raise ValueError("grant must be non-negative")
        sent = 0
        completed: List[CompletedRequest] = []
        while granted > 0 and self.queue:
            head = self.queue[0]
            pending = head.size_bytes - self._head_sent
            take = min(pending, granted)
            sent += take
            granted -= take
            self.queued_bytes -= take
            if take == pending:
                self.queue.popleft()
                self._head_sent = 0
                completed.append(CompletedRequest(request=head, completed_at=now))
            else:
                self._head_sent += take
        self.granted_bytes += sent
        return sent, completed


class DbaScheduler:
    """The OLT's upstream grant allocator across registered T-CONTs."""

    def __init__(self, policy: str = "fair", guaranteed_share: float = 0.1,
                 bus: Optional[EventBus] = None, name: str = "dba",
                 batched: bool = True) -> None:
        if policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}")
        if not 0.0 <= guaranteed_share < 1.0:
            raise ValueError("guaranteed_share must be in [0, 1)")
        self.policy = policy
        self.guaranteed_share = guaranteed_share
        self.name = name
        self._bus = bus
        self._tconts: Dict[int, TCont] = {}
        self._next_alloc_id = 1
        self.cycles_run = 0
        # ``batched`` amortizes the per-cycle tier setup (priority sort,
        # alloc-id sort, weight lambdas) across cycles: the tier table is
        # rebuilt only when registrations change. Grants are byte-for-byte
        # identical to the reference path (property-tested); keep
        # ``batched=False`` for the E19 before/after microbenchmark.
        self.batched = batched
        # Static structures for the batched path, rebuilt lazily after a
        # registration: T-CONTs flattened in alloc-id order with parallel
        # weight arrays, and per-priority index lists (priorities
        # ascending). Registration-time weight/priority are cached — the
        # batched path assumes they are not mutated mid-flight.
        self._flat: Optional[List[TCont]] = None
        self._flat_weights: List[float] = []
        self._flat_alloc_ids: List[int] = []
        self._tier_indices: List[List[int]] = []

    # -- registration -----------------------------------------------------------

    def register_tcont(self, serial: str, tenant: str, priority: int = 2,
                       weight: float = 1.0,
                       factory: Callable[..., TCont] = TCont) -> TCont:
        """Create a T-CONT for one ONU/tenant flow; returns it.

        ``factory`` lets callers register :class:`TCont` subclasses (the
        downstream plane's bounded queues) into the same allocator — the
        cached flat weight/priority arrays are rebuilt either way.
        """
        tcont = factory(self._next_alloc_id, serial, tenant,
                        priority=priority, weight=weight)
        self._tconts[tcont.alloc_id] = tcont
        self._next_alloc_id += 1
        self._flat = None
        return tcont

    def tconts(self) -> List[TCont]:
        return list(self._tconts.values())

    def total_backlog(self) -> int:
        return sum(t.queued_bytes for t in self._tconts.values())

    # -- the grant loop ---------------------------------------------------------

    def grant(self, capacity_bytes: int, now: float = 0.0) -> Dict[int, int]:
        """Allocate one cycle's upstream capacity; returns alloc_id -> bytes.

        Grants are computed against current backlog and always sum to
        ``min(capacity_bytes, total_backlog)``.
        """
        if capacity_bytes < 0:
            raise ValueError("capacity must be non-negative")
        if self.batched and self.policy == "fair":
            backlogged, grants, remaining = self._grant_fair_batched(
                capacity_bytes, want_backlogged=self._bus is not None)
        else:
            backlogged = [t for t in self._tconts.values()
                          if t.queued_bytes > 0]
            grants = {t.alloc_id: 0 for t in backlogged}
            remaining = capacity_bytes
            if backlogged and remaining > 0:
                if self.policy == "fair":
                    remaining = self._grant_guaranteed(
                        backlogged, grants, capacity_bytes, remaining)
                    remaining = self._grant_priority_tiers(
                        backlogged, grants, remaining)
                else:
                    remaining = self._fill(
                        backlogged, grants, remaining,
                        lambda t: float(
                            t.queued_bytes - grants[t.alloc_id]))
        self.cycles_run += 1
        if self._bus is not None:
            granted_total = capacity_bytes - remaining
            self._bus.emit(
                "pon.dba.grant", self.name, now,
                cycle=self.cycles_run, capacity_bytes=capacity_bytes,
                granted_bytes=granted_total,
                backlog_bytes=self.total_backlog() - granted_total,
                tconts={t.alloc_id: grants.get(t.alloc_id, 0)
                        for t in backlogged})
        return grants

    def _grant_guaranteed(self, backlogged: Sequence[TCont],
                          grants: Dict[int, int], capacity: int,
                          remaining: int) -> int:
        """The anti-starvation round: a small quantum for every queue."""
        if self.guaranteed_share <= 0:
            return remaining
        quantum = max(1, int(capacity * self.guaranteed_share) // len(backlogged))
        for tcont in backlogged:
            if remaining <= 0:
                break
            give = min(quantum, tcont.queued_bytes, remaining)
            grants[tcont.alloc_id] += give
            remaining -= give
        return remaining

    def _grant_priority_tiers(self, backlogged: Sequence[TCont],
                              grants: Dict[int, int], remaining: int) -> int:
        """Strict priority across tiers, weighted fair filling within one."""
        for priority in sorted({t.priority for t in backlogged}):
            if remaining <= 0:
                break
            tier = [t for t in backlogged if t.priority == priority]
            remaining = self._fill(tier, grants, remaining,
                                   lambda t: t.weight)
        return remaining

    def _grant_fair_batched(
            self, capacity: int, want_backlogged: bool = True
    ) -> Tuple[List[TCont], Dict[int, int], int]:
        """The batched fair-policy grant: one pass collects backlog into
        flat parallel arrays (pendings, weights, per-tier index lists),
        then the guaranteed round and the strict-priority tier walk run on
        local list indexing only — no per-T-CONT dict lookups, ``min``
        calls or weight lambdas in the progressive-fill inner loop.

        Iteration order (alloc ids ascending; priorities ascending within
        the tier walk) and quantum arithmetic — including float summation
        order for tier weights — match the reference
        ``_grant_guaranteed`` + ``_grant_priority_tiers``/``_fill`` pair
        exactly, so grants are byte-for-byte identical (property-tested).
        """
        flat = self._flat
        if flat is None:
            flat = self._flat = list(self._tconts.values())
            self._flat_weights = [t.weight for t in flat]
            self._flat_alloc_ids = [t.alloc_id for t in flat]
            by_priority: Dict[int, List[int]] = {}
            for index, tcont in enumerate(flat):
                by_priority.setdefault(tcont.priority, []).append(index)
            self._tier_indices = [by_priority[p]
                                  for p in sorted(by_priority)]
        weights = self._flat_weights
        # ``queued`` is this cycle's backlog snapshot (never mutated, so
        # membership stays queryable); ``gives`` accumulates grants.
        queued = [t.queued_bytes for t in flat]
        count = len(queued) - queued.count(0)
        gives = [0] * len(flat)
        remaining = capacity
        if count and remaining > 0:
            if self.guaranteed_share > 0:
                quantum = max(1, int(capacity * self.guaranteed_share)
                              // count)
                for i, pending in enumerate(queued):
                    if pending <= 0:
                        continue
                    if remaining <= 0:
                        break
                    give = quantum if quantum < pending else pending
                    if give > remaining:
                        give = remaining
                    gives[i] = give
                    remaining -= give
            for tier in self._tier_indices:
                if remaining <= 0:
                    break
                active = [i for i in tier if queued[i] - gives[i] > 0]
                while remaining > 0 and active:
                    total_weight = 0.0
                    for i in active:
                        total_weight += weights[i]
                    snapshot = remaining
                    for i in active:
                        quantum = int(snapshot * weights[i] / total_weight)
                        if quantum < 1:
                            quantum = 1
                        pending = queued[i] - gives[i]
                        give = quantum if quantum < pending else pending
                        if give > remaining:
                            give = remaining
                        gives[i] += give
                        remaining -= give
                        if remaining <= 0:
                            break
                    active = [i for i in active if queued[i] - gives[i] > 0]
        backlogged = [t for t, q in zip(flat, queued) if q > 0] \
            if want_backlogged else []
        grants = {alloc_id: give for alloc_id, give, q
                  in zip(self._flat_alloc_ids, gives, queued) if q > 0}
        return backlogged, grants, remaining

    @staticmethod
    def _fill(tconts: Sequence[TCont], grants: Dict[int, int],
              remaining: int, weight_of) -> int:
        """Progressive weighted filling until capacity or backlog runs out.

        Every pass hands each still-backlogged T-CONT a quantum
        proportional to its weight (at least one byte), capped at its
        remaining backlog — so the loop strictly progresses and stops
        exactly when capacity is spent or nothing is queued.
        """
        ordered = sorted(tconts, key=lambda t: t.alloc_id)
        while remaining > 0:
            active = [t for t in ordered
                      if t.queued_bytes - grants[t.alloc_id] > 0]
            if not active:
                break
            total_weight = sum(weight_of(t) for t in active)
            snapshot = remaining
            for tcont in active:
                if remaining <= 0:
                    break
                quantum = max(1, int(snapshot * weight_of(tcont) / total_weight))
                pending = tcont.queued_bytes - grants[tcont.alloc_id]
                give = min(quantum, pending, remaining)
                grants[tcont.alloc_id] += give
                remaining -= give
        return remaining

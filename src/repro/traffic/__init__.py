"""The traffic plane: per-tenant load over the PON upstream (T8 made real).

Before this package the reproduction's attacks ran against an idle
network; now tenant workloads actually contend on the shared GPON
upstream, so "monopolizing resources" (T8) and its mitigations —
admission control, DBA fairness, metrics-driven abuse detection — are
measurable rather than asserted.

* :mod:`repro.traffic.profiles` — deterministic workload shapes (steady,
  bursty, diurnal, hostile flood) on the simulation clock;
* :mod:`repro.traffic.dba` — the GPON dynamic-bandwidth-allocation grant
  loop: strict priority + weighted fair sharing across T-CONTs;
* :mod:`repro.traffic.qos` — per-tenant token buckets, bounded admission
  queues, drops and backpressure events (both directions, one enforcer
  per direction);
* :mod:`repro.traffic.downstream` — the OLT-side downstream scheduling
  plane: bounded per-ONU queues drained strict-priority/weighted-fair by
  the same batched allocator the upstream DBA uses;
* :mod:`repro.traffic.telemetry` — tenant-labelled share gauges and
  histograms in the metrics registry;
* :mod:`repro.traffic.loadgen` — the driver producing per-tenant
  throughput/latency/drop reports and Jain fairness numbers (E18).
"""

from repro.traffic.dba import CompletedRequest, DbaScheduler, TCont
from repro.traffic.downstream import DownstreamQueue, DownstreamScheduler
from repro.traffic.fleet import (
    FleetDriver, FleetReport, OltShard, fleet_tenant_specs,
    run_fleet_experiment,
)
from repro.traffic.loadgen import (
    LoadGenerator, TenantReport, TenantSpec, TrafficReport, jain_index,
    run_genio_traffic, run_traffic_experiment, standard_tenant_specs,
)
from repro.traffic.profiles import (
    BurstyProfile, DiurnalProfile, HostileFloodProfile, Request,
    SteadyProfile, WorkloadProfile, make_profile,
)
from repro.traffic.qos import QosEnforcer, TenantPolicy, TokenBucket
from repro.traffic.telemetry import TrafficTelemetry

__all__ = [
    "BurstyProfile",
    "CompletedRequest",
    "DbaScheduler",
    "DiurnalProfile",
    "DownstreamQueue",
    "DownstreamScheduler",
    "FleetDriver",
    "FleetReport",
    "HostileFloodProfile",
    "LoadGenerator",
    "OltShard",
    "QosEnforcer",
    "Request",
    "SteadyProfile",
    "TCont",
    "TenantPolicy",
    "TenantReport",
    "TenantSpec",
    "TokenBucket",
    "TrafficReport",
    "TrafficTelemetry",
    "WorkloadProfile",
    "fleet_tenant_specs",
    "jain_index",
    "make_profile",
    "run_fleet_experiment",
    "run_genio_traffic",
    "run_traffic_experiment",
    "standard_tenant_specs",
]

"""Multi-OLT fleet driver: N PON plants under one discrete-event engine.

One :class:`~repro.common.sim.Scheduler` owns time for the whole fleet;
every OLT shard (a :class:`~repro.pon.network.PonNetwork` with its own
tenants, DBA scheduler and QoS enforcer) registers its traffic-cycle
task on it, so the shards run *concurrently in simulated time* with
deterministic, seeded interleaving — the scale-out the single-OLT
``loadgen`` could not express.

Fleet telemetry is deliberately fleet-normalized: per-OLT generators run
with telemetry disabled (an OLT-local share gauge would make a benign
tenant on a quiet OLT look like a noisy neighbour fleet-wide), and a
periodic monitor task publishes each tenant's share of the *fleet's*
offered load into a fleet-local registry, which the metrics-driven
:class:`~repro.security.monitor.abuse.ResourceAbuseDetector` samples.
Abuse alerts land on the shared bus; the fleet report records per-tenant
alert latency (first ``monitor.alert`` timestamp), aggregate throughput
and Jain fairness *across OLTs* — the numbers the DSN paper's monitoring
lessons (T6-T8, M15/M18) only make quantifiable at fleet scale.

Two execution paths share the same shard construction
(:func:`fleet_shard_configs`):

* :class:`FleetDriver` — the original single-scheduler path: every shard
  registers its cycle task on one shared :class:`Scheduler`, so the whole
  fleet interleaves under one time authority. Kept for E19 and for
  experiments that need shard events interleaved at cycle granularity.
* :class:`ParallelFleetDriver` over a :class:`ShardPool` — the scale
  path. Shards are fully self-contained (own clock, scheduler, bus), so
  the pool advances each one to the next monitor boundary either
  in-process (``workers=1``, the default fallback) or in spawn-safe
  worker processes (``workers=N``). Workers return compact
  :class:`CycleResult` payloads; the driver re-publishes the captured
  shard events onto its shared bus in deterministic
  ``(timestamp, shard_index, seq)`` order via
  :meth:`~repro.common.events.EventBus.publish_batch`. Because every
  shard is seeded identically no matter which worker hosts it, the
  rendered fleet report is **byte-identical** for any worker count.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.clock import SimClock
from repro.common.events import Event, EventBus
from repro.common.sim import Scheduler
from repro.common.telemetry import MetricsRegistry
from repro.pon.network import PonNetwork
from repro.security.monitor.abuse import ResourceAbuseDetector
from repro.security.monitor.falco import FalcoEngine
from repro.traffic.loadgen import (
    LoadGenerator, TenantSpec, TrafficReport, jain_index,
)
from repro.traffic.telemetry import OFFERED_SHARE_GAUGE, TrafficTelemetry

__all__ = ["OltShard", "FleetReport", "FleetDriver", "fleet_tenant_specs",
           "run_fleet_experiment", "ShardConfig", "fleet_shard_configs",
           "CycleResult", "ShardRunner", "ShardPool", "ParallelFleetDriver",
           "run_fleet_parallel"]

_BENIGN_PROFILES = ("steady", "bursty", "diurnal")


def fleet_tenant_specs(olt_index: int, count: int, hostile: bool,
                       rate_bps: float = 100e6) -> List[TenantSpec]:
    """Tenant specs for one shard, named uniquely across the fleet.

    With ``hostile`` the shard's last tenant floods (priority 3, the
    best-effort tier a flooder actually occupies); the rest rotate
    through the well-behaved profiles.
    """
    if count < 1:
        raise ValueError("each OLT needs at least one tenant")
    specs: List[TenantSpec] = []
    for slot in range(1, count + 1):
        if hostile and slot == count:
            specs.append(TenantSpec(
                tenant=f"olt{olt_index}-tenant-hostile",
                serial=f"FLT{olt_index:02d}9999",
                profile="hostile", rate_bps=rate_bps, priority=3))
        else:
            specs.append(TenantSpec(
                tenant=f"olt{olt_index}-tenant-{slot:02d}",
                serial=f"FLT{olt_index:02d}{slot:04d}",
                profile=_BENIGN_PROFILES[(slot - 1) % len(_BENIGN_PROFILES)],
                rate_bps=rate_bps))
    return specs


@dataclass(frozen=True)
class ShardConfig:
    """Everything needed to (re)build one shard, in any process.

    Pure data — picklable, so the same config builds an identical shard
    in the parent (``workers=1`` fallback) or in a spawned worker. The
    seed is the fleet seed: shard determinism comes from string-seeded
    profile RNGs plus the shard-local scheduler seed, both derived from
    the config alone, never from which worker hosts the shard.
    """

    index: int
    name: str
    specs: Tuple[TenantSpec, ...]
    cycle_s: float
    seed: int
    downstream: bool = False


def fleet_shard_configs(n_olts: int, n_tenants: int, seed: int = 0,
                        cycle_s: float = 0.02, rate_bps: float = 100e6,
                        hostile: bool = True,
                        downstream: bool = False) -> List[ShardConfig]:
    """Split ``n_tenants`` across ``n_olts`` shards (shared by both drivers).

    Tenants are dealt as evenly as possible (earlier shards get the
    remainder); with ``hostile`` the first shard's last tenant floods.
    """
    if n_olts < 1:
        raise ValueError("need at least one OLT")
    if n_tenants < n_olts:
        raise ValueError("need at least one tenant per OLT")
    configs: List[ShardConfig] = []
    base, extra = divmod(n_tenants, n_olts)
    for olt_index in range(1, n_olts + 1):
        count = base + (1 if olt_index <= extra else 0)
        # One flooder per fleet, on the first shard: the detector
        # must pick it out of fleet-normalized shares.
        specs = fleet_tenant_specs(olt_index, count,
                                   hostile=hostile and olt_index == 1,
                                   rate_bps=rate_bps)
        configs.append(ShardConfig(index=olt_index, name=f"olt-{olt_index}",
                                   specs=tuple(specs), cycle_s=cycle_s,
                                   seed=seed, downstream=downstream))
    return configs


@dataclass
class OltShard:
    """One OLT's slice of the fleet: plant + generator + tenant specs."""

    name: str
    network: PonNetwork
    generator: LoadGenerator
    specs: List[TenantSpec]

    @property
    def tenant_names(self) -> List[str]:
        return [spec.tenant for spec in self.specs]


@dataclass
class FleetReport:
    """Per-OLT rows plus the fleet-level aggregates."""

    duration_s: float
    seed: int
    olts: Dict[str, TrafficReport] = field(default_factory=dict)
    hostile_tenants: List[str] = field(default_factory=list)
    alert_first_at: Dict[str, float] = field(default_factory=dict)
    started_at: float = 0.0
    scheduler_events: int = 0
    monitor_passes: int = 0

    def olt_throughput_bps(self, olt: str) -> float:
        report = self.olts[olt]
        return sum(row.throughput_bps for row in report.tenants.values())

    @property
    def fleet_throughput_bps(self) -> float:
        return sum(self.olt_throughput_bps(olt) for olt in self.olts)

    @property
    def downstream(self) -> bool:
        """True when any shard scheduled the downstream direction."""
        return any(report.downstream for report in self.olts.values())

    def olt_downstream_bps(self, olt: str) -> float:
        report = self.olts[olt]
        return sum(row.downstream_throughput_bps
                   for row in report.tenants.values())

    @property
    def fleet_downstream_bps(self) -> float:
        return sum(self.olt_downstream_bps(olt) for olt in self.olts)

    def jain_across_olts(self) -> float:
        """Fairness of the fleet's delivered throughput between OLTs."""
        return jain_index([self.olt_throughput_bps(olt)
                           for olt in sorted(self.olts)])

    def alert_latency_s(self, tenant: str) -> Optional[float]:
        """Time from fleet start to the tenant's first abuse alert."""
        at = self.alert_first_at.get(tenant)
        return None if at is None else at - self.started_at

    def render(self) -> str:
        n_tenants = sum(len(r.tenants) for r in self.olts.values())
        downstream = self.downstream
        lines = [
            f"fleet run: {len(self.olts)} OLTs x {n_tenants} tenants, "
            f"{self.duration_s:g}s simulated, seed {self.seed}",
            f"scheduler: {self.scheduler_events} events fired, "
            f"{self.monitor_passes} monitor passes",
            "",
            f"{'olt':<12} {'tenants':>7} {'Mbps':>10} {'jain':>7} "
            f"{'drops':>7}"
            + (f" {'dn Mbps':>10} {'dn drops':>9}" if downstream else ""),
        ]
        for olt in sorted(self.olts):
            report = self.olts[olt]
            drops = sum(row.dropped_requests
                        for row in report.tenants.values())
            line = (
                f"{olt:<12} {len(report.tenants):>7} "
                f"{self.olt_throughput_bps(olt) / 1e6:>10.1f} "
                f"{report.jain():>7.3f} {drops:>7}")
            if downstream:
                down_drops = sum(row.dropped_down_requests
                                 for row in report.tenants.values())
                line += (f" {self.olt_downstream_bps(olt) / 1e6:>10.1f} "
                         f"{down_drops:>9}")
            lines.append(line)
        lines.append("")
        lines.append(
            f"fleet throughput: {self.fleet_throughput_bps / 1e6:.1f} Mbps"
            f" | Jain across OLTs: {self.jain_across_olts():.3f}")
        if downstream:
            lines.append(
                f"fleet downstream throughput: "
                f"{self.fleet_downstream_bps / 1e6:.1f} Mbps")
        if self.hostile_tenants:
            for tenant in self.hostile_tenants:
                latency = self.alert_latency_s(tenant)
                lines.append(
                    f"abuse alert for {tenant}: "
                    + (f"first flagged at t={self.alert_first_at[tenant]:g}s"
                       f" (latency {latency:g}s)"
                       if latency is not None else "NOT flagged"))
        benign_flagged = sorted(t for t in self.alert_first_at
                                if t not in self.hostile_tenants)
        if benign_flagged:
            lines.append("false positives: " + ", ".join(benign_flagged))
        return "\n".join(lines)


class FleetDriver:
    """Runs N OLT shards concurrently under one sim scheduler."""

    def __init__(self, n_olts: int = 4, n_tenants: int = 32, seed: int = 0,
                 cycle_s: float = 0.02, rate_bps: float = 100e6,
                 hostile: bool = True,
                 monitor_interval_s: float = 0.1,
                 alert_persistence: int = 2,
                 downstream: bool = False) -> None:
        if n_olts < 1:
            raise ValueError("need at least one OLT")
        if n_tenants < n_olts:
            raise ValueError("need at least one tenant per OLT")
        if monitor_interval_s <= 0:
            raise ValueError("monitor interval must be positive")
        self.seed = seed
        self.monitor_interval_s = monitor_interval_s
        self.clock = SimClock()
        self.bus = EventBus()
        self.scheduler = Scheduler(clock=self.clock, seed=seed)
        # Fleet-local registry: the abuse detector samples *fleet*
        # shares, never the process-wide registry of whoever embeds us.
        self.registry = MetricsRegistry()
        self._offered_gauge = self.registry.gauge(
            OFFERED_SHARE_GAUGE,
            "Fraction of fleet-wide offered upstream load, per tenant.",
            ("tenant",))
        # Persistence > 1 is the alert-fatigue knob: a bursty tenant's
        # spike breaches one monitor pass, a flooder breaches them all.
        self.detector = ResourceAbuseDetector(
            registry=self.registry, bus=self.bus,
            persistence=alert_persistence)
        self.falco = FalcoEngine()
        self.falco.attach(self.bus)
        self.alert_first_at: Dict[str, float] = {}
        self.bus.subscribe("monitor.alert", self._on_alert)
        self.monitor_passes = 0

        self.shards: List[OltShard] = []
        for config in fleet_shard_configs(n_olts, n_tenants, seed=seed,
                                          cycle_s=cycle_s, rate_bps=rate_bps,
                                          hostile=hostile,
                                          downstream=downstream):
            network = PonNetwork.build(config.name,
                                       clock=self.clock, bus=self.bus)
            generator = LoadGenerator(
                network, list(config.specs), cycle_s=cycle_s, seed=seed,
                sim=self.scheduler, downstream=config.downstream,
                traffic_telemetry=TrafficTelemetry.disabled())
            self.shards.append(OltShard(name=config.name,
                                        network=network,
                                        generator=generator,
                                        specs=list(config.specs)))

    # -- monitoring --------------------------------------------------------------

    def _on_alert(self, event: Event) -> None:
        summary = str(event.payload.get("summary", ""))
        token = summary.split(" ", 1)[0]
        if token.startswith("tenant="):
            self.alert_first_at.setdefault(token[len("tenant="):],
                                           event.timestamp)

    def _monitor_pass(self) -> None:
        """Publish fleet-normalized offered shares, then sample them."""
        self.monitor_passes += 1
        offered: Dict[str, int] = {}
        for shard in self.shards:
            offered.update(shard.generator.offered_totals())
        total = sum(offered.values())
        for tenant in sorted(offered):
            share = offered[tenant] / total if total else 0.0
            self._offered_gauge.set(round(share, 6), tenant=tenant)
        self.detector.sample_metrics(now=self.scheduler.now)

    # -- the run -----------------------------------------------------------------

    def run(self, seconds: float) -> FleetReport:
        """Drive every shard for ``seconds`` of simulated time."""
        if seconds <= 0:
            raise ValueError("duration must be positive")
        started_at = self.clock.now
        for shard in self.shards:
            shard.generator.start(seconds)
        # All generators share cycle_s, so they agree on the horizon.
        duration = self.shards[0].generator.n_cycles \
            * self.shards[0].generator.cycle_s
        end = started_at + duration
        self.scheduler.every(self.monitor_interval_s, self._monitor_pass,
                             name="fleet/monitor", until=end)
        self.falco.schedule_stats(self.scheduler, self.monitor_interval_s,
                                  until=end)
        self.scheduler.run_until(end)

        report = FleetReport(
            duration_s=duration, seed=self.seed, started_at=started_at,
            scheduler_events=self.scheduler.events_fired,
            monitor_passes=self.monitor_passes,
            alert_first_at=dict(self.alert_first_at),
            hostile_tenants=[spec.tenant for shard in self.shards
                             for spec in shard.specs
                             if spec.profile == "hostile"])
        for shard in self.shards:
            report.olts[shard.name] = shard.generator.report()
        return report


def run_fleet_experiment(n_olts: int = 4, n_tenants: int = 32,
                         seconds: float = 2.0, seed: int = 0,
                         hostile: bool = True,
                         cycle_s: float = 0.02,
                         downstream: bool = False) -> FleetReport:
    """Stand up a fleet and run it — the E19 / CLI entry point."""
    driver = FleetDriver(n_olts=n_olts, n_tenants=n_tenants, seed=seed,
                         hostile=hostile, cycle_s=cycle_s,
                         downstream=downstream)
    return driver.run(seconds)


# ---------------------------------------------------------------------------
# Parallel execution path: self-contained shards behind a worker pool.

# One captured bus event, ready to pickle across a process boundary:
# (timestamp, shard-local publish seq, topic, source, payload).
EventRow = Tuple[float, int, str, str, Dict[str, Any]]


@dataclass
class CycleResult:
    """Compact outcome of advancing one shard to a time boundary.

    Everything a merge needs and nothing a worker cannot pickle: the
    bus events captured since the previous boundary (as plain tuples),
    cumulative per-tenant offered/delivered tallies, and counters.
    """

    shard_index: int
    name: str
    until: float
    events: List[EventRow]
    offered: Dict[str, int]
    delivered: Dict[str, int]
    admitted_bytes: int
    dropped_requests: int
    events_fired: int


class ShardRunner:
    """One self-contained OLT shard: own clock, scheduler and bus.

    Identical code runs in the parent (``workers=1``) and in spawned
    workers, which is what makes the fleet output worker-count-invariant:
    a shard's entire event stream is a function of its
    :class:`ShardConfig` alone. Every bus event the shard emits is
    captured (with a shard-local sequence number) for the driver to merge
    deterministically.
    """

    def __init__(self, config: ShardConfig) -> None:
        self.config = config
        self.index = config.index
        self.name = config.name
        self.clock = SimClock()
        self.bus = EventBus()
        self.scheduler = Scheduler(clock=self.clock, seed=config.seed)
        self.network = PonNetwork.build(config.name,
                                        clock=self.clock, bus=self.bus)
        self.generator = LoadGenerator(
            self.network, list(config.specs), cycle_s=config.cycle_s,
            seed=config.seed, sim=self.scheduler,
            downstream=config.downstream,
            traffic_telemetry=TrafficTelemetry.disabled())
        self._pending: List[EventRow] = []
        self._seq = 0
        self.bus.subscribe("", self._capture)

    def _capture(self, event: Event) -> None:
        self._pending.append((event.timestamp, self._seq, event.topic,
                              event.source, event.payload))
        self._seq += 1

    def start(self, seconds: float) -> int:
        """Register the shard's cycle task; returns its cycle count."""
        self.generator.start(seconds)
        return self.generator.n_cycles

    def advance(self, until: float) -> CycleResult:
        """Run the shard to ``until`` and hand back what happened."""
        self.scheduler.run_until(until)
        events, self._pending = self._pending, []
        qos = self.generator.qos
        admitted = dropped = 0
        if qos is not None:
            for spec in self.generator.specs:
                policy = qos.policy(spec.tenant)
                admitted += policy.admitted_bytes
                dropped += policy.dropped_requests
        return CycleResult(
            shard_index=self.index, name=self.name, until=until,
            events=events,
            offered=self.generator.offered_totals(),
            delivered=self.generator.delivered_totals(),
            admitted_bytes=admitted, dropped_requests=dropped,
            events_fired=self.scheduler.events_fired)

    def report(self) -> TrafficReport:
        return self.generator.report()


def _shard_worker_main(conn, configs: Sequence[ShardConfig]) -> None:
    """Spawn entry point: host a bucket of shards, driven over a pipe.

    Commands are ``(verb, arg)`` tuples — ``("start", seconds)``,
    ``("advance", until)``, ``("report", None)`` each answer with a list
    (one entry per hosted shard, in bucket order); ``("stop", None)``
    ends the loop. Process-wide telemetry is disabled first so worker
    shards never meter into a registry nobody will ever scrape.
    """
    from repro.common.telemetry import set_telemetry_enabled
    set_telemetry_enabled(False)
    runners = [ShardRunner(config) for config in configs]
    try:
        while True:
            command, arg = conn.recv()
            if command == "start":
                conn.send([runner.start(arg) for runner in runners])
            elif command == "advance":
                conn.send([runner.advance(arg) for runner in runners])
            elif command == "report":
                conn.send([(runner.name, runner.report())
                           for runner in runners])
            elif command == "stop":
                break
    except EOFError:
        pass
    finally:
        conn.close()


class ShardPool:
    """Advances a set of shards in lockstep, in-process or across workers.

    ``workers=1`` (the default) hosts every shard in the calling process
    — no multiprocessing at all, the portable fallback. ``workers>1``
    spawns that many worker processes (``spawn`` context, so the pool is
    fork-safety-agnostic) and deals shards round-robin across them.
    Results always come back sorted by shard index, so callers never see
    worker assignment.
    """

    def __init__(self, configs: Sequence[ShardConfig],
                 workers: int = 1) -> None:
        if not configs:
            raise ValueError("need at least one shard")
        if workers < 1:
            raise ValueError("need at least one worker")
        self.configs = list(configs)
        self.workers = min(workers, len(self.configs))
        self._local: List[ShardRunner] = []
        self._procs: List[mp.process.BaseProcess] = []
        self._conns: List[Any] = []
        if self.workers == 1:
            self._local = [ShardRunner(config) for config in self.configs]
            return
        ctx = mp.get_context("spawn")
        buckets: List[List[ShardConfig]] = [[] for _ in range(self.workers)]
        for position, config in enumerate(self.configs):
            buckets[position % self.workers].append(config)
        for bucket in buckets:
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(target=_shard_worker_main,
                                  args=(child_conn, bucket), daemon=True)
            process.start()
            child_conn.close()
            self._procs.append(process)
            self._conns.append(parent_conn)

    @property
    def n_shards(self) -> int:
        return len(self.configs)

    def _broadcast(self, command: str, arg: Any) -> List[Any]:
        for conn in self._conns:
            conn.send((command, arg))
        return [item for conn in self._conns for item in conn.recv()]

    def start(self, seconds: float) -> int:
        """Register every shard's cycle task; returns the cycle count
        (identical across shards — they share ``cycle_s``)."""
        if self._local:
            counts = [runner.start(seconds) for runner in self._local]
        else:
            counts = self._broadcast("start", seconds)
        return counts[0]

    def advance(self, until: float) -> List[CycleResult]:
        """Advance every shard to ``until``; results in shard-index order."""
        if self._local:
            results = [runner.advance(until) for runner in self._local]
        else:
            results = self._broadcast("advance", until)
        results.sort(key=lambda result: result.shard_index)
        return results

    def reports(self) -> Dict[str, TrafficReport]:
        """Per-shard traffic reports, keyed and ordered by shard name."""
        if self._local:
            pairs = [(runner.name, runner.report())
                     for runner in self._local]
        else:
            pairs = self._broadcast("report", None)
        return {name: report for name, report in sorted(pairs)}

    def close(self) -> None:
        """Stop workers (idempotent; a no-op for the in-process pool)."""
        for conn in self._conns:
            try:
                conn.send(("stop", None))
            except (BrokenPipeError, OSError):
                pass
        for process in self._procs:
            process.join(timeout=10)
            if process.is_alive():
                process.terminate()
                process.join(timeout=10)
        for conn in self._conns:
            conn.close()
        self._procs = []
        self._conns = []
        self._local = []

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class ParallelFleetDriver:
    """Fleet driver over a :class:`ShardPool`.

    Advances the pool monitor-interval by monitor-interval; after each
    boundary it merges every shard's captured events onto the shared bus
    in ``(timestamp, shard_index, seq)`` order — a total order that does
    not depend on worker count or scheduling — then runs the
    fleet-normalized monitor pass and the Falco stats heartbeat. The
    rendered :class:`FleetReport` is therefore byte-identical between
    ``workers=1`` and ``workers=N`` for the same seed.
    """

    def __init__(self, n_olts: int = 4, n_tenants: int = 32, seed: int = 0,
                 cycle_s: float = 0.02, rate_bps: float = 100e6,
                 hostile: bool = True,
                 monitor_interval_s: float = 0.1,
                 alert_persistence: int = 2,
                 workers: int = 1,
                 downstream: bool = False) -> None:
        if monitor_interval_s <= 0:
            raise ValueError("monitor interval must be positive")
        self.seed = seed
        self.monitor_interval_s = monitor_interval_s
        self.configs = fleet_shard_configs(
            n_olts, n_tenants, seed=seed, cycle_s=cycle_s,
            rate_bps=rate_bps, hostile=hostile, downstream=downstream)
        self.pool = ShardPool(self.configs, workers=workers)
        self.bus = EventBus()
        # Fleet-local registry, same rationale as FleetDriver.
        self.registry = MetricsRegistry()
        self._offered_gauge = self.registry.gauge(
            OFFERED_SHARE_GAUGE,
            "Fraction of fleet-wide offered upstream load, per tenant.",
            ("tenant",))
        self.detector = ResourceAbuseDetector(
            registry=self.registry, bus=self.bus,
            persistence=alert_persistence)
        self.falco = FalcoEngine()
        self.falco.attach(self.bus)
        self.alert_first_at: Dict[str, float] = {}
        self.bus.subscribe("monitor.alert", self._on_alert)
        self.monitor_passes = 0

    def _on_alert(self, event: Event) -> None:
        summary = str(event.payload.get("summary", ""))
        token = summary.split(" ", 1)[0]
        if token.startswith("tenant="):
            self.alert_first_at.setdefault(token[len("tenant="):],
                                           event.timestamp)

    def _merge(self, results: Sequence[CycleResult]) -> int:
        """Publish the boundary's shard events in deterministic order.

        Returns the fleet's cumulative shard scheduler event count.
        """
        rows: List[Tuple[float, int, int, str, str, Dict[str, Any]]] = []
        for result in results:
            shard = result.shard_index
            for timestamp, seq, topic, source, payload in result.events:
                rows.append((timestamp, shard, seq, topic, source, payload))
        rows.sort(key=lambda row: (row[0], row[1], row[2]))
        self.bus.publish_batch([
            Event(topic=topic, source=source, timestamp=timestamp,
                  payload=payload)
            for timestamp, _shard, _seq, topic, source, payload in rows])
        return sum(result.events_fired for result in results)

    def _monitor_pass(self, results: Sequence[CycleResult],
                      boundary: float) -> None:
        """Fleet-normalized offered shares from the shard tallies."""
        self.monitor_passes += 1
        offered: Dict[str, int] = {}
        for result in results:
            offered.update(result.offered)
        total = sum(offered.values())
        for tenant in sorted(offered):
            share = offered[tenant] / total if total else 0.0
            self._offered_gauge.set(round(share, 6), tenant=tenant)
        self.detector.sample_metrics(now=boundary)

    def run(self, seconds: float) -> FleetReport:
        """Drive every shard for ``seconds`` of simulated time."""
        if seconds <= 0:
            raise ValueError("duration must be positive")
        n_cycles = self.pool.start(seconds)
        duration = n_cycles * self.configs[0].cycle_s
        events_fired = 0
        boundary = 0.0
        step = 0
        while boundary < duration:
            step += 1
            # Multiples of the interval, never float accumulation — the
            # boundary sequence is identical in every mode.
            boundary = min(step * self.monitor_interval_s, duration)
            results = self.pool.advance(boundary)
            events_fired = self._merge(results)
            self._monitor_pass(results, boundary)
            self.bus.emit("monitor.stats", "falco", boundary,
                          events_processed=self.falco.events_processed,
                          rule_evaluations=self.falco.rule_evaluations,
                          alerts=len(self.falco.alerts))
        report = FleetReport(
            duration_s=duration, seed=self.seed, started_at=0.0,
            scheduler_events=events_fired + self.monitor_passes,
            monitor_passes=self.monitor_passes,
            alert_first_at=dict(self.alert_first_at),
            hostile_tenants=[spec.tenant for config in self.configs
                             for spec in config.specs
                             if spec.profile == "hostile"])
        # Sorted insertion: fleet-level float sums then reduce in the
        # same order regardless of which worker produced which report.
        report.olts.update(self.pool.reports())
        return report


def run_fleet_parallel(n_olts: int = 4, n_tenants: int = 32,
                       seconds: float = 2.0, seed: int = 0,
                       hostile: bool = True, cycle_s: float = 0.02,
                       workers: int = 1,
                       downstream: bool = False) -> FleetReport:
    """Stand up a sharded fleet and run it — the E20 / CLI entry point."""
    driver = ParallelFleetDriver(n_olts=n_olts, n_tenants=n_tenants,
                                 seed=seed, hostile=hostile,
                                 cycle_s=cycle_s, workers=workers,
                                 downstream=downstream)
    try:
        return driver.run(seconds)
    finally:
        driver.pool.close()

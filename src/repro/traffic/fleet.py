"""Multi-OLT fleet driver: N PON plants under one discrete-event engine.

One :class:`~repro.common.sim.Scheduler` owns time for the whole fleet;
every OLT shard (a :class:`~repro.pon.network.PonNetwork` with its own
tenants, DBA scheduler and QoS enforcer) registers its traffic-cycle
task on it, so the shards run *concurrently in simulated time* with
deterministic, seeded interleaving — the scale-out the single-OLT
``loadgen`` could not express.

Fleet telemetry is deliberately fleet-normalized: per-OLT generators run
with telemetry disabled (an OLT-local share gauge would make a benign
tenant on a quiet OLT look like a noisy neighbour fleet-wide), and a
periodic monitor task publishes each tenant's share of the *fleet's*
offered load into a fleet-local registry, which the metrics-driven
:class:`~repro.security.monitor.abuse.ResourceAbuseDetector` samples.
Abuse alerts land on the shared bus; the fleet report records per-tenant
alert latency (first ``monitor.alert`` timestamp), aggregate throughput
and Jain fairness *across OLTs* — the numbers the DSN paper's monitoring
lessons (T6-T8, M15/M18) only make quantifiable at fleet scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.clock import SimClock
from repro.common.events import Event, EventBus
from repro.common.sim import Scheduler
from repro.common.telemetry import MetricsRegistry
from repro.pon.network import PonNetwork
from repro.security.monitor.abuse import ResourceAbuseDetector
from repro.security.monitor.falco import FalcoEngine
from repro.traffic.loadgen import (
    LoadGenerator, TenantSpec, TrafficReport, jain_index,
)
from repro.traffic.telemetry import OFFERED_SHARE_GAUGE, TrafficTelemetry

__all__ = ["OltShard", "FleetReport", "FleetDriver", "fleet_tenant_specs",
           "run_fleet_experiment"]

_BENIGN_PROFILES = ("steady", "bursty", "diurnal")


def fleet_tenant_specs(olt_index: int, count: int, hostile: bool,
                       rate_bps: float = 100e6) -> List[TenantSpec]:
    """Tenant specs for one shard, named uniquely across the fleet.

    With ``hostile`` the shard's last tenant floods (priority 3, the
    best-effort tier a flooder actually occupies); the rest rotate
    through the well-behaved profiles.
    """
    if count < 1:
        raise ValueError("each OLT needs at least one tenant")
    specs: List[TenantSpec] = []
    for slot in range(1, count + 1):
        if hostile and slot == count:
            specs.append(TenantSpec(
                tenant=f"olt{olt_index}-tenant-hostile",
                serial=f"FLT{olt_index:02d}9999",
                profile="hostile", rate_bps=rate_bps, priority=3))
        else:
            specs.append(TenantSpec(
                tenant=f"olt{olt_index}-tenant-{slot:02d}",
                serial=f"FLT{olt_index:02d}{slot:04d}",
                profile=_BENIGN_PROFILES[(slot - 1) % len(_BENIGN_PROFILES)],
                rate_bps=rate_bps))
    return specs


@dataclass
class OltShard:
    """One OLT's slice of the fleet: plant + generator + tenant specs."""

    name: str
    network: PonNetwork
    generator: LoadGenerator
    specs: List[TenantSpec]

    @property
    def tenant_names(self) -> List[str]:
        return [spec.tenant for spec in self.specs]


@dataclass
class FleetReport:
    """Per-OLT rows plus the fleet-level aggregates."""

    duration_s: float
    seed: int
    olts: Dict[str, TrafficReport] = field(default_factory=dict)
    hostile_tenants: List[str] = field(default_factory=list)
    alert_first_at: Dict[str, float] = field(default_factory=dict)
    started_at: float = 0.0
    scheduler_events: int = 0
    monitor_passes: int = 0

    def olt_throughput_bps(self, olt: str) -> float:
        report = self.olts[olt]
        return sum(row.throughput_bps for row in report.tenants.values())

    @property
    def fleet_throughput_bps(self) -> float:
        return sum(self.olt_throughput_bps(olt) for olt in self.olts)

    def jain_across_olts(self) -> float:
        """Fairness of the fleet's delivered throughput between OLTs."""
        return jain_index([self.olt_throughput_bps(olt)
                           for olt in sorted(self.olts)])

    def alert_latency_s(self, tenant: str) -> Optional[float]:
        """Time from fleet start to the tenant's first abuse alert."""
        at = self.alert_first_at.get(tenant)
        return None if at is None else at - self.started_at

    def render(self) -> str:
        n_tenants = sum(len(r.tenants) for r in self.olts.values())
        lines = [
            f"fleet run: {len(self.olts)} OLTs x {n_tenants} tenants, "
            f"{self.duration_s:g}s simulated, seed {self.seed}",
            f"scheduler: {self.scheduler_events} events fired, "
            f"{self.monitor_passes} monitor passes",
            "",
            f"{'olt':<12} {'tenants':>7} {'Mbps':>10} {'jain':>7} "
            f"{'drops':>7}",
        ]
        for olt in sorted(self.olts):
            report = self.olts[olt]
            drops = sum(row.dropped_requests
                        for row in report.tenants.values())
            lines.append(
                f"{olt:<12} {len(report.tenants):>7} "
                f"{self.olt_throughput_bps(olt) / 1e6:>10.1f} "
                f"{report.jain():>7.3f} {drops:>7}")
        lines.append("")
        lines.append(
            f"fleet throughput: {self.fleet_throughput_bps / 1e6:.1f} Mbps"
            f" | Jain across OLTs: {self.jain_across_olts():.3f}")
        if self.hostile_tenants:
            for tenant in self.hostile_tenants:
                latency = self.alert_latency_s(tenant)
                lines.append(
                    f"abuse alert for {tenant}: "
                    + (f"first flagged at t={self.alert_first_at[tenant]:g}s"
                       f" (latency {latency:g}s)"
                       if latency is not None else "NOT flagged"))
        benign_flagged = sorted(t for t in self.alert_first_at
                                if t not in self.hostile_tenants)
        if benign_flagged:
            lines.append("false positives: " + ", ".join(benign_flagged))
        return "\n".join(lines)


class FleetDriver:
    """Runs N OLT shards concurrently under one sim scheduler."""

    def __init__(self, n_olts: int = 4, n_tenants: int = 32, seed: int = 0,
                 cycle_s: float = 0.02, rate_bps: float = 100e6,
                 hostile: bool = True,
                 monitor_interval_s: float = 0.1,
                 alert_persistence: int = 2) -> None:
        if n_olts < 1:
            raise ValueError("need at least one OLT")
        if n_tenants < n_olts:
            raise ValueError("need at least one tenant per OLT")
        if monitor_interval_s <= 0:
            raise ValueError("monitor interval must be positive")
        self.seed = seed
        self.monitor_interval_s = monitor_interval_s
        self.clock = SimClock()
        self.bus = EventBus()
        self.scheduler = Scheduler(clock=self.clock, seed=seed)
        # Fleet-local registry: the abuse detector samples *fleet*
        # shares, never the process-wide registry of whoever embeds us.
        self.registry = MetricsRegistry()
        self._offered_gauge = self.registry.gauge(
            OFFERED_SHARE_GAUGE,
            "Fraction of fleet-wide offered upstream load, per tenant.",
            ("tenant",))
        # Persistence > 1 is the alert-fatigue knob: a bursty tenant's
        # spike breaches one monitor pass, a flooder breaches them all.
        self.detector = ResourceAbuseDetector(
            registry=self.registry, bus=self.bus,
            persistence=alert_persistence)
        self.falco = FalcoEngine()
        self.falco.attach(self.bus)
        self.alert_first_at: Dict[str, float] = {}
        self.bus.subscribe("monitor.alert", self._on_alert)
        self.monitor_passes = 0

        self.shards: List[OltShard] = []
        base, extra = divmod(n_tenants, n_olts)
        for olt_index in range(1, n_olts + 1):
            count = base + (1 if olt_index <= extra else 0)
            # One flooder per fleet, on the first shard: the detector
            # must pick it out of fleet-normalized shares.
            specs = fleet_tenant_specs(olt_index, count,
                                       hostile=hostile and olt_index == 1,
                                       rate_bps=rate_bps)
            network = PonNetwork.build(f"olt-{olt_index}",
                                       clock=self.clock, bus=self.bus)
            generator = LoadGenerator(
                network, specs, cycle_s=cycle_s, seed=seed,
                sim=self.scheduler,
                traffic_telemetry=TrafficTelemetry.disabled())
            self.shards.append(OltShard(name=f"olt-{olt_index}",
                                        network=network,
                                        generator=generator, specs=specs))

    # -- monitoring --------------------------------------------------------------

    def _on_alert(self, event: Event) -> None:
        summary = str(event.payload.get("summary", ""))
        token = summary.split(" ", 1)[0]
        if token.startswith("tenant="):
            self.alert_first_at.setdefault(token[len("tenant="):],
                                           event.timestamp)

    def _monitor_pass(self) -> None:
        """Publish fleet-normalized offered shares, then sample them."""
        self.monitor_passes += 1
        offered: Dict[str, int] = {}
        for shard in self.shards:
            for tenant, nbytes in shard.generator._offered.items():
                offered[tenant] = nbytes
        total = sum(offered.values())
        for tenant in sorted(offered):
            share = offered[tenant] / total if total else 0.0
            self._offered_gauge.set(round(share, 6), tenant=tenant)
        self.detector.sample_metrics(now=self.scheduler.now)

    # -- the run -----------------------------------------------------------------

    def run(self, seconds: float) -> FleetReport:
        """Drive every shard for ``seconds`` of simulated time."""
        if seconds <= 0:
            raise ValueError("duration must be positive")
        started_at = self.clock.now
        for shard in self.shards:
            shard.generator.start(seconds)
        # All generators share cycle_s, so they agree on the horizon.
        duration = self.shards[0].generator._n_cycles \
            * self.shards[0].generator.cycle_s
        end = started_at + duration
        self.scheduler.every(self.monitor_interval_s, self._monitor_pass,
                             name="fleet/monitor", until=end)
        self.falco.schedule_stats(self.scheduler, self.monitor_interval_s,
                                  until=end)
        self.scheduler.run_until(end)

        report = FleetReport(
            duration_s=duration, seed=self.seed, started_at=started_at,
            scheduler_events=self.scheduler.events_fired,
            monitor_passes=self.monitor_passes,
            alert_first_at=dict(self.alert_first_at),
            hostile_tenants=[spec.tenant for shard in self.shards
                             for spec in shard.specs
                             if spec.profile == "hostile"])
        for shard in self.shards:
            report.olts[shard.name] = shard.generator.report()
        return report


def run_fleet_experiment(n_olts: int = 4, n_tenants: int = 32,
                         seconds: float = 2.0, seed: int = 0,
                         hostile: bool = True,
                         cycle_s: float = 0.02) -> FleetReport:
    """Stand up a fleet and run it — the E19 / CLI entry point."""
    driver = FleetDriver(n_olts=n_olts, n_tenants=n_tenants, seed=seed,
                         hostile=hostile, cycle_s=cycle_s)
    return driver.run(seconds)

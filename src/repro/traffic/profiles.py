"""Deterministic per-tenant workload profiles.

The traffic plane starts here: each tenant's workload is a
:class:`WorkloadProfile` that, asked for one scheduler cycle at a time,
emits a batch of upstream :class:`Request` objects. Profiles are driven
entirely by the simulation clock and a seeded RNG (string seeding, which
CPython hashes with SHA-512 — stable across processes), so every
experiment replays byte-for-byte.

Four shapes cover the scenarios the E18 benchmark needs:

* :class:`SteadyProfile` — constant-rate service traffic (the well-behaved
  baseline);
* :class:`BurstyProfile` — on/off bursts around the same mean (batch
  analytics, backups);
* :class:`DiurnalProfile` — a sinusoidal day/night swing (residential
  subscriber load);
* :class:`HostileFloodProfile` — a T8 "monopolizing resources" tenant
  offering many times its subscribed rate.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Type

__all__ = [
    "Request",
    "WorkloadProfile",
    "SteadyProfile",
    "BurstyProfile",
    "DiurnalProfile",
    "HostileFloodProfile",
    "PROFILE_KINDS",
    "make_profile",
]


@dataclass(frozen=True)
class Request:
    """One upstream transfer request a tenant wants carried over the PON."""

    tenant: str
    size_bytes: int
    issued_at: float

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("request size must be positive")


class WorkloadProfile:
    """Base profile: a subscribed rate plus a deterministic request stream.

    ``rate_bps`` is the tenant's *nominal* (subscribed) rate; subclasses
    shape the actually-offered load around it. ``batch`` returns the
    requests issued during ``[now, now + interval_s)``.
    """

    kind = "steady"

    def __init__(self, tenant: str, rate_bps: float,
                 request_bytes: int = 25_000, seed: int = 0) -> None:
        if rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        if request_bytes <= 0:
            raise ValueError("request_bytes must be positive")
        self.tenant = tenant
        self.rate_bps = float(rate_bps)
        self.request_bytes = int(request_bytes)
        self._rng = random.Random(f"{seed}:{self.kind}:{tenant}")
        self._carry_bytes = 0.0   # fractional-request remainder across cycles

    # -- the shape hook subclasses override -----------------------------------

    def offered_bps(self, now: float) -> float:
        """Instantaneous offered rate at simulated time ``now``."""
        return self.rate_bps

    # -- batch generation -------------------------------------------------------

    def batch(self, now: float, interval_s: float) -> List[Request]:
        """Requests issued during one cycle, in deterministic order."""
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        target = self.offered_bps(now) / 8.0 * interval_s + self._carry_bytes
        requests: List[Request] = []
        while target >= self.request_bytes:
            jitter = 1.0 + (self._rng.random() - 0.5) * 0.2
            size = max(64, int(self.request_bytes * jitter))
            requests.append(Request(tenant=self.tenant, size_bytes=size,
                                    issued_at=now))
            target -= size
        self._carry_bytes = max(0.0, target)
        return requests


class SteadyProfile(WorkloadProfile):
    """Constant-rate offered load at the subscribed rate."""

    kind = "steady"


class BurstyProfile(WorkloadProfile):
    """On/off bursts: ``burst_factor`` x rate while on, near-idle while off.

    Duty cycle is chosen so the long-run mean stays at ``rate_bps``.
    """

    kind = "bursty"

    def __init__(self, tenant: str, rate_bps: float,
                 request_bytes: int = 25_000, seed: int = 0,
                 burst_factor: float = 4.0, period_s: float = 0.2) -> None:
        super().__init__(tenant, rate_bps, request_bytes, seed)
        if burst_factor <= 1.0:
            raise ValueError("burst_factor must exceed 1")
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        self.burst_factor = burst_factor
        self.period_s = period_s
        # Deterministic per-tenant phase so tenants don't burst in lockstep.
        self._phase = self._rng.random() * period_s

    def offered_bps(self, now: float) -> float:
        position = ((now + self._phase) % self.period_s) / self.period_s
        on = position < (1.0 / self.burst_factor)
        return self.rate_bps * self.burst_factor if on else self.rate_bps * 0.05


class DiurnalProfile(WorkloadProfile):
    """A compressed day/night swing around the subscribed rate.

    ``day_s`` is the length of one simulated "day" (compressed so the
    benchmarks sweep several cycles in seconds of simulated time). Load
    swings between 25% and 175% of the nominal rate.
    """

    kind = "diurnal"

    def __init__(self, tenant: str, rate_bps: float,
                 request_bytes: int = 25_000, seed: int = 0,
                 day_s: float = 2.0) -> None:
        super().__init__(tenant, rate_bps, request_bytes, seed)
        if day_s <= 0:
            raise ValueError("day_s must be positive")
        self.day_s = day_s
        self._phase = self._rng.random() * day_s

    def offered_bps(self, now: float) -> float:
        angle = 2.0 * math.pi * ((now + self._phase) % self.day_s) / self.day_s
        return self.rate_bps * (1.0 + 0.75 * math.sin(angle))


class HostileFloodProfile(WorkloadProfile):
    """The T8 tenant: floods at ``flood_factor`` x its subscribed rate."""

    kind = "hostile"

    def __init__(self, tenant: str, rate_bps: float,
                 request_bytes: int = 25_000, seed: int = 0,
                 flood_factor: float = 20.0) -> None:
        super().__init__(tenant, rate_bps, request_bytes, seed)
        if flood_factor <= 1.0:
            raise ValueError("flood_factor must exceed 1")
        self.flood_factor = flood_factor

    def offered_bps(self, now: float) -> float:
        return self.rate_bps * self.flood_factor


PROFILE_KINDS: Dict[str, Type[WorkloadProfile]] = {
    "steady": SteadyProfile,
    "bursty": BurstyProfile,
    "diurnal": DiurnalProfile,
    "hostile": HostileFloodProfile,
}


def make_profile(kind: str, tenant: str, rate_bps: float,
                 seed: int = 0, **kwargs: object) -> WorkloadProfile:
    """Build a profile by kind name (the CLI/loadgen entry point)."""
    cls = PROFILE_KINDS.get(kind)
    if cls is None:
        raise ValueError(
            f"unknown profile kind {kind!r}; expected one of "
            f"{sorted(PROFILE_KINDS)}")
    return cls(tenant, rate_bps, seed=seed, **kwargs)

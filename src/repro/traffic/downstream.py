"""Per-ONU downstream scheduling at the OLT (the broadcast direction).

GPON downstream is a broadcast TDM stream: every GEM frame physically
reaches every ONU on the splitter, and the OLT alone decides whose
traffic occupies the frame slots. The paper's resource-abuse story
(T8, M17/M18) is bidirectional — a flooded tenant's *responses* contend
for the shared downstream just as its uploads contend for DBA grants —
so this module gives the OLT the same scheduling discipline in the
downstream direction:

* :class:`DownstreamQueue` — a bounded per-(tenant, priority) FIFO at
  the OLT. Unlike upstream T-CONTs (whose backlog lives at the ONU and
  is policed by grants), downstream backlog occupies OLT buffer memory,
  so the queue enforces a byte limit and tail-drops with accounting.
* :class:`DownstreamScheduler` — strict priority across classes plus
  weighted-fair filling within a class, computed by the *same*
  :class:`~repro.traffic.dba.DbaScheduler` allocator the upstream path
  uses — including its registration-time cached flat weight/priority
  arrays, so the per-cycle allocation that feeds the drain loop is
  array-driven. ``batched=False`` keeps the naive per-queue reference
  path for the E21 before/after benchmark (allocations are byte-for-byte
  identical either way, inherited from the DBA property tests and
  re-asserted in :mod:`tests.test_downstream`).

The scheduler is clock-agnostic: :meth:`DownstreamScheduler.run_cycle`
takes ``now`` from its caller (the OLT's ``run_downstream_cycle``, run
on the :mod:`repro.common.sim` Scheduler by the load generator), so it
never advances time itself.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.events import EventBus
from repro.traffic.dba import CompletedRequest, DbaScheduler, TCont
from repro.traffic.profiles import Request

__all__ = ["DownstreamQueue", "DownstreamScheduler", "DrainResult"]

# sent bytes + the requests completed by them, for one queue, one cycle.
DrainResult = Tuple[int, List[CompletedRequest]]


class DownstreamQueue(TCont):
    """A bounded downstream FIFO: a T-CONT that lives in OLT buffer RAM.

    Shares the priority/weight/fragmentation machinery of
    :class:`~repro.traffic.dba.TCont` (so the DBA allocator can schedule
    it unchanged) but bounds its backlog: upstream backlog is the ONU's
    problem, downstream backlog is finite OLT memory.
    """

    def __init__(self, alloc_id: int, serial: str, tenant: str,
                 priority: int = 2, weight: float = 1.0,
                 limit_bytes: int = 1 << 20) -> None:
        if limit_bytes <= 0:
            raise ValueError("limit_bytes must be positive")
        super().__init__(alloc_id, serial, tenant,
                         priority=priority, weight=weight)
        self.limit_bytes = int(limit_bytes)
        self.dropped_requests = 0
        self.dropped_bytes = 0

    def offer(self, request: Request) -> bool:
        """Enqueue one response; tail-drops (with accounting) when full."""
        if self.queued_bytes + request.size_bytes > self.limit_bytes:
            self.dropped_requests += 1
            self.dropped_bytes += request.size_bytes
            return False
        super().offer(request)
        return True


class DownstreamScheduler:
    """The OLT-side downstream frame scheduler across per-ONU queues.

    Wraps a ``fair``-policy :class:`~repro.traffic.dba.DbaScheduler` as
    the allocation engine: one :meth:`run_cycle` computes the cycle's
    per-queue byte allocation (guaranteed anti-starvation quantum, then
    strict priority across classes with weighted-fair filling within
    one) on the allocator's cached flat arrays, and drains each granted
    queue onto the wire budget. Emits one ``pon.downstream.grant`` bus
    event per cycle, mirroring ``pon.dba.grant``.
    """

    DEFAULT_QUEUE_LIMIT = 1 << 20     # 1 MiB of OLT buffer per queue

    def __init__(self, bus: Optional[EventBus] = None,
                 name: str = "downstream", batched: bool = True,
                 guaranteed_share: float = 0.1,
                 queue_limit_bytes: int = DEFAULT_QUEUE_LIMIT) -> None:
        if queue_limit_bytes <= 0:
            raise ValueError("queue_limit_bytes must be positive")
        self.name = name
        self.batched = batched
        self.queue_limit_bytes = int(queue_limit_bytes)
        self._bus = bus
        # The allocator publishes no events of its own — this scheduler
        # owns the downstream-flavoured grant event.
        self._allocator = DbaScheduler(policy="fair",
                                       guaranteed_share=guaranteed_share,
                                       bus=None, name=f"{name}/alloc",
                                       batched=batched)
        self._queues: Dict[str, DownstreamQueue] = {}
        self.cycles_run = 0

    # -- registration -----------------------------------------------------------

    def register_queue(self, serial: str, tenant: str, priority: int = 2,
                       weight: float = 1.0,
                       limit_bytes: Optional[int] = None) -> DownstreamQueue:
        """Create one tenant's bounded downstream queue; returns it."""
        if tenant in self._queues:
            raise ValueError(f"tenant {tenant} already has a downstream queue")
        limit = self.queue_limit_bytes if limit_bytes is None \
            else int(limit_bytes)

        def build(alloc_id: int, serial: str, tenant: str,
                  priority: int, weight: float) -> DownstreamQueue:
            return DownstreamQueue(alloc_id, serial, tenant,
                                   priority=priority, weight=weight,
                                   limit_bytes=limit)

        queue = self._allocator.register_tcont(serial, tenant,
                                               priority=priority,
                                               weight=weight, factory=build)
        self._queues[tenant] = queue
        return queue

    def queue(self, tenant: str) -> DownstreamQueue:
        queue = self._queues.get(tenant)
        if queue is None:
            raise KeyError(f"tenant {tenant} has no downstream queue")
        return queue

    def queues(self) -> List[DownstreamQueue]:
        """Every queue, in alloc-id (registration) order."""
        return self._allocator.tconts()

    def total_backlog(self) -> int:
        return self._allocator.total_backlog()

    # -- the cycle --------------------------------------------------------------

    def enqueue(self, request: Request) -> bool:
        """Buffer one downstream response; False if tail-dropped."""
        return self.queue(request.tenant).offer(request)

    def run_cycle(self, capacity_bytes: int,
                  now: float = 0.0) -> Dict[str, DrainResult]:
        """Allocate and drain one downstream frame cycle.

        Returns ``tenant -> (sent_bytes, completions)`` for every queue
        that transmitted. Allocation runs on the DBA allocator (batched
        flat arrays by default); the drain walks queues in alloc-id
        order, so the result — like the upstream grant map — is a pure
        function of registration order, backlog and capacity.
        """
        grants = self._allocator.grant(capacity_bytes, now=now)
        self.cycles_run += 1
        results: Dict[str, DrainResult] = {}
        sent_total = 0
        for queue in self._allocator.tconts():
            granted = grants.get(queue.alloc_id, 0)
            if granted <= 0:
                continue
            sent, completed = queue.drain(granted, now)
            sent_total += sent
            results[queue.tenant] = (sent, completed)
        if self._bus is not None:
            self._bus.emit(
                "pon.downstream.grant", self.name, now,
                cycle=self.cycles_run, capacity_bytes=capacity_bytes,
                granted_bytes=sent_total,
                backlog_bytes=self.total_backlog(),
                queues={queue.alloc_id: grants.get(queue.alloc_id, 0)
                        for queue in self._allocator.tconts()
                        if grants.get(queue.alloc_id, 0) > 0})
        return results

"""Tenant-labelled traffic telemetry.

Publishes the per-tenant shares the metrics-driven abuse detector
(:class:`repro.security.monitor.abuse.ResourceAbuseDetector`) consumes,
closing the ROADMAP loop: noisy-neighbour detection reads the registry
instead of ad-hoc runtime sampling.

Metric families (all labelled by ``tenant``):

* ``traffic_tenant_offered_share`` (gauge) — fraction of total *offered*
  load this cycle. A flooding tenant shows up here even when QoS clamps
  what it actually gets — offered load is the attack signal.
* ``traffic_tenant_bandwidth_share`` (gauge) — fraction of *delivered*
  upstream bytes this cycle (what the tenant actually got).
* ``traffic_tenant_bandwidth_share_hist`` (histogram) — the distribution
  of delivered shares across cycles.
* ``runtime_tenant_cpu_share`` (gauge) + ``runtime_tenant_cpu_share_hist``
  (histogram) — per-tenant CPU share of a container runtime's capacity,
  sampled via :meth:`TrafficTelemetry.observe_runtime`.
* ``traffic_tenant_downstream_throughput_bps`` (gauge) — delivered
  downstream rate over the last scheduling cycle.
* ``traffic_tenant_downstream_queue_bytes`` (gauge) — the tenant's
  downstream queue depth at the OLT after the cycle's drain (sustained
  depth means the broadcast direction is the bottleneck).

The family names are module constants so consumers (the abuse detector,
dashboards, tests) never hand-spell them.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.common import telemetry

__all__ = [
    "OFFERED_SHARE_GAUGE",
    "BANDWIDTH_SHARE_GAUGE",
    "BANDWIDTH_SHARE_HIST",
    "CPU_SHARE_GAUGE",
    "CPU_SHARE_HIST",
    "DOWNSTREAM_THROUGHPUT_GAUGE",
    "DOWNSTREAM_QUEUE_GAUGE",
    "SHARE_BUCKETS",
    "TrafficTelemetry",
]

OFFERED_SHARE_GAUGE = "traffic_tenant_offered_share"
BANDWIDTH_SHARE_GAUGE = "traffic_tenant_bandwidth_share"
BANDWIDTH_SHARE_HIST = "traffic_tenant_bandwidth_share_hist"
CPU_SHARE_GAUGE = "runtime_tenant_cpu_share"
CPU_SHARE_HIST = "runtime_tenant_cpu_share_hist"
DOWNSTREAM_THROUGHPUT_GAUGE = "traffic_tenant_downstream_throughput_bps"
DOWNSTREAM_QUEUE_GAUGE = "traffic_tenant_downstream_queue_bytes"

# Share-of-node buckets: fine below fair-share levels, coarse above.
SHARE_BUCKETS = (0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.0)


class TrafficTelemetry:
    """Registers and feeds the tenant-share metric families.

    Constructed with an explicit registry, or the process-wide one when
    telemetry is enabled; with telemetry globally disabled every method
    is a no-op (same contract as the other instrumented substrates).
    """

    def __init__(self,
                 registry: Optional[telemetry.MetricsRegistry] = None) -> None:
        metrics = registry if registry is not None else telemetry.active_registry()
        self._metrics = metrics
        if metrics is not None:
            self._offered_gauge = metrics.gauge(
                OFFERED_SHARE_GAUGE,
                "Fraction of offered upstream load, per tenant.", ("tenant",))
            self._share_gauge = metrics.gauge(
                BANDWIDTH_SHARE_GAUGE,
                "Fraction of delivered upstream bytes, per tenant.",
                ("tenant",))
            self._share_hist = metrics.histogram(
                BANDWIDTH_SHARE_HIST,
                "Delivered bandwidth share per tenant per DBA cycle.",
                ("tenant",), buckets=SHARE_BUCKETS)
            self._cpu_gauge = metrics.gauge(
                CPU_SHARE_GAUGE,
                "Fraction of node CPU capacity consumed, per tenant.",
                ("tenant",))
            self._cpu_hist = metrics.histogram(
                CPU_SHARE_HIST,
                "CPU share per tenant per sampling pass.",
                ("tenant",), buckets=SHARE_BUCKETS)
            self._downstream_throughput_gauge = metrics.gauge(
                DOWNSTREAM_THROUGHPUT_GAUGE,
                "Delivered downstream bits/s over the last cycle, "
                "per tenant.", ("tenant",))
            self._downstream_queue_gauge = metrics.gauge(
                DOWNSTREAM_QUEUE_GAUGE,
                "Downstream queue depth at the OLT after the cycle's "
                "drain, per tenant.", ("tenant",))

    @classmethod
    def disabled(cls) -> "TrafficTelemetry":
        """A no-op instance regardless of the process-wide registry.

        The fleet driver hands this to its per-OLT generators: per-OLT
        share gauges would make benign tenants on quiet OLTs look like
        noisy neighbours fleet-wide, so the fleet publishes its own
        fleet-normalized shares instead.
        """
        instance = cls.__new__(cls)
        instance._metrics = None
        return instance

    @property
    def enabled(self) -> bool:
        return self._metrics is not None

    def record_cycle(self, offered: Mapping[str, int],
                     delivered: Mapping[str, int]) -> None:
        """Update per-tenant share gauges/histograms for one DBA cycle."""
        if self._metrics is None:
            return
        total_offered = sum(offered.values())
        total_delivered = sum(delivered.values())
        for tenant, nbytes in offered.items():
            share = nbytes / total_offered if total_offered else 0.0
            self._offered_gauge.set(round(share, 6), tenant=tenant)
        for tenant, nbytes in delivered.items():
            share = nbytes / total_delivered if total_delivered else 0.0
            self._share_gauge.set(round(share, 6), tenant=tenant)
            self._share_hist.observe(share, tenant=tenant)

    def record_downstream_cycle(self, delivered: Mapping[str, int],
                                queue_depths: Mapping[str, int],
                                cycle_s: float) -> None:
        """Update the downstream throughput/queue-depth gauges."""
        if self._metrics is None:
            return
        for tenant, nbytes in delivered.items():
            self._downstream_throughput_gauge.set(
                round(nbytes * 8 / cycle_s, 3), tenant=tenant)
        for tenant, depth in queue_depths.items():
            self._downstream_queue_gauge.set(depth, tenant=tenant)

    def observe_runtime(self, runtime) -> Dict[str, float]:
        """Sample a container runtime's per-tenant CPU shares into gauges.

        ``runtime`` is a :class:`repro.virt.runtime.ContainerRuntime`
        (duck-typed to avoid a layering dependency). Returns the shares.
        """
        shares: Dict[str, float] = {}
        capacity = getattr(runtime, "cpu_capacity", 0.0)
        if capacity:
            for container in runtime.running_containers():
                tenant = container.tenant or "untenanted"
                shares[tenant] = shares.get(tenant, 0.0) \
                    + container.cpu_used / capacity
        if self._metrics is not None:
            for tenant, share in shares.items():
                self._cpu_gauge.set(round(share, 6), tenant=tenant)
                self._cpu_hist.observe(share, tenant=tenant)
        return shares

"""The traffic driver: N tenants x M workloads over the PON upstream.

Ties the subsystem together, one DBA cycle at a time:

1. every tenant's :mod:`profile <repro.traffic.profiles>` generates its
   batch of upstream requests for the cycle;
2. the :mod:`QoS enforcer <repro.traffic.qos>` polices them against the
   tenant's subscribed rate (token bucket + bounded queue + drops);
3. admitted requests enter the tenant's T-CONT, and the OLT's
   :mod:`DBA grant loop <repro.traffic.dba>` splits the cycle's upstream
   capacity across contending T-CONTs;
4. granted bytes travel upstream as one aggregated frame per ONU (so the
   OLT's ``pon_*`` telemetry and the plant's stats see the load);
5. tenant-labelled shares land in the metrics registry for the
   metrics-driven abuse detector.

``dba_enabled=False`` swaps the scheduler to the demand-proportional
policy (an unscheduled shared medium); ``qos_enabled=False`` removes
admission control. The E18 benchmark compares all four corners.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.common.sim import PeriodicTask, Scheduler
from repro.pon.network import PonNetwork
from repro.pon.onu import Onu
from repro.traffic.dba import DbaScheduler, TCont
from repro.traffic.downstream import DownstreamScheduler
from repro.traffic.profiles import Request, WorkloadProfile, make_profile
from repro.traffic.qos import QosEnforcer
from repro.traffic.telemetry import TrafficTelemetry

__all__ = [
    "TenantSpec",
    "TenantReport",
    "TrafficReport",
    "LoadGenerator",
    "jain_index",
    "run_traffic_experiment",
    "run_genio_traffic",
]

# Well-behaved workload rotation for generated scenarios.
_BENIGN_PROFILES = ("steady", "bursty", "diurnal")


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly even, 1/n = one taker."""
    values = [v for v in values if v >= 0]
    if not values:
        return 1.0
    square_sum = sum(v * v for v in values)
    if square_sum == 0:
        return 1.0
    total = sum(values)
    return (total * total) / (len(values) * square_sum)


@dataclass
class TenantSpec:
    """One tenant's workload wiring: profile, rate, T-CONT class."""

    tenant: str
    serial: str
    profile: str = "steady"
    rate_bps: float = 100e6
    priority: int = 2            # T-CONT type 3 (non-assured) by default
    weight: float = 1.0


@dataclass
class TenantReport:
    """Per-tenant outcome of one load-generation run.

    ``admitted_bytes`` counts everything QoS let through — immediate
    admissions plus queued requests released in later cycles. The
    ``*_down`` fields are zero unless the run scheduled the downstream
    direction too.
    """

    tenant: str
    profile: str
    offered_bytes: int
    admitted_bytes: int
    delivered_bytes: int
    dropped_requests: int
    completed_requests: int
    mean_latency_s: float
    p95_latency_s: float
    throughput_bps: float
    bandwidth_share: float
    offered_down_bytes: int = 0
    delivered_down_bytes: int = 0
    dropped_down_requests: int = 0
    downstream_throughput_bps: float = 0.0


@dataclass
class TrafficReport:
    """The whole run: per-tenant rows plus fairness aggregates."""

    duration_s: float
    capacity_bps: float
    dba_enabled: bool
    qos_enabled: bool
    tenants: Dict[str, TenantReport] = field(default_factory=dict)
    downstream: bool = False
    downstream_capacity_bps: float = 0.0

    def jain(self, tenants: Optional[Sequence[str]] = None) -> float:
        """Jain's index over delivered throughput (optionally a subset)."""
        rows = ([self.tenants[t] for t in tenants] if tenants is not None
                else list(self.tenants.values()))
        return jain_index([row.throughput_bps for row in rows])

    def render(self) -> str:
        lines = [
            f"traffic run: {self.duration_s:g}s simulated, upstream "
            f"{self.capacity_bps / 1e6:.0f} Mbps, "
            f"DBA {'on' if self.dba_enabled else 'OFF'}, "
            f"QoS {'on' if self.qos_enabled else 'OFF'}",
            "",
            f"{'tenant':<16} {'profile':<9} {'offered':>10} {'delivered':>10} "
            f"{'drops':>7} {'Mbps':>8} {'share':>7} {'p95 ms':>8}",
        ]
        for tenant in sorted(self.tenants):
            row = self.tenants[tenant]
            lines.append(
                f"{row.tenant:<16} {row.profile:<9} "
                f"{_fmt_bytes(row.offered_bytes):>10} "
                f"{_fmt_bytes(row.delivered_bytes):>10} "
                f"{row.dropped_requests:>7} "
                f"{row.throughput_bps / 1e6:>8.1f} "
                f"{row.bandwidth_share:>7.1%} "
                f"{row.p95_latency_s * 1e3:>8.1f}")
        lines.append("")
        lines.append(f"Jain fairness index (all tenants): {self.jain():.3f}")
        if self.downstream:
            lines.append("")
            lines.append(
                f"downstream: broadcast "
                f"{self.downstream_capacity_bps / 1e6:.0f} Mbps")
            lines.append(
                f"{'tenant':<16} {'offered':>10} {'delivered':>10} "
                f"{'drops':>7} {'Mbps':>8}")
            for tenant in sorted(self.tenants):
                row = self.tenants[tenant]
                lines.append(
                    f"{row.tenant:<16} "
                    f"{_fmt_bytes(row.offered_down_bytes):>10} "
                    f"{_fmt_bytes(row.delivered_down_bytes):>10} "
                    f"{row.dropped_down_requests:>7} "
                    f"{row.downstream_throughput_bps / 1e6:>8.1f}")
            lines.append("")
            lines.append(
                "Jain fairness index (downstream): "
                f"{jain_index([row.downstream_throughput_bps for row in self.tenants.values()]):.3f}")
        return "\n".join(lines)


def _fmt_bytes(nbytes: int) -> str:
    if nbytes >= 1 << 20:
        return f"{nbytes / (1 << 20):.1f}MB"
    if nbytes >= 1 << 10:
        return f"{nbytes / (1 << 10):.1f}KB"
    return f"{nbytes}B"


class LoadGenerator:
    """Runs tenant workloads through a PON plant under DBA + QoS."""

    def __init__(
        self,
        network: PonNetwork,
        specs: Sequence[TenantSpec],
        dba_enabled: bool = True,
        qos_enabled: bool = True,
        cycle_s: float = 0.02,
        seed: int = 0,
        qos_headroom: float = 1.5,
        traffic_telemetry: Optional[TrafficTelemetry] = None,
        sim: Optional[Scheduler] = None,
        downstream: bool = False,
        downstream_ratio: float = 4.0,
    ) -> None:
        if not specs:
            raise ValueError("at least one tenant spec is required")
        if cycle_s <= 0:
            raise ValueError("cycle must be positive")
        if downstream_ratio <= 0:
            raise ValueError("downstream_ratio must be positive")
        if len({spec.tenant for spec in specs}) != len(specs):
            raise ValueError("tenant names must be unique")
        self.network = network
        self.specs = list(specs)
        self.dba_enabled = dba_enabled
        self.qos_enabled = qos_enabled
        self.downstream_enabled = downstream
        # Access networks are asymmetric: each tenant's downstream
        # responses are sized as a multiple of its subscribed rate.
        self.downstream_ratio = downstream_ratio
        self.cycle_s = cycle_s
        self._clock = network.clock
        self._bus = network.bus
        # The sim engine driving this generator's cadence. A fleet run
        # passes one shared Scheduler so every OLT's cycle task is
        # interleaved deterministically under a single time authority.
        self.sim = sim if sim is not None \
            else Scheduler(clock=network.clock, seed=seed)

        self.scheduler = DbaScheduler(
            policy="fair" if dba_enabled else "proportional",
            bus=self._bus, name=f"{network.olt.name}/dba")
        network.olt.attach_dba(self.scheduler)
        self.qos = QosEnforcer(bus=self._bus,
                               name=f"{network.olt.name}/qos") \
            if qos_enabled else None
        self.downstream_scheduler: Optional[DownstreamScheduler] = None
        self.qos_down: Optional[QosEnforcer] = None
        if downstream:
            self.downstream_scheduler = DownstreamScheduler(
                bus=self._bus, name=f"{network.olt.name}/downstream")
            network.olt.attach_downstream(self.downstream_scheduler)
            if qos_enabled:
                self.qos_down = QosEnforcer(
                    bus=self._bus, name=f"{network.olt.name}/qos-down",
                    direction="downstream")
        self.telemetry = traffic_telemetry if traffic_telemetry is not None \
            else TrafficTelemetry()

        self._profiles: Dict[str, WorkloadProfile] = {}
        self._profiles_down: Dict[str, WorkloadProfile] = {}
        self._tconts: Dict[str, TCont] = {}
        for spec in self.specs:
            if spec.serial not in network.onus:
                network.attach_onu(Onu(spec.serial,
                                       premises=f"premises-{spec.tenant}"))
            self._profiles[spec.tenant] = make_profile(
                spec.profile, spec.tenant, spec.rate_bps, seed=seed)
            self._tconts[spec.tenant] = self.scheduler.register_tcont(
                spec.serial, spec.tenant,
                priority=spec.priority, weight=spec.weight)
            if self.qos is not None:
                self.qos.add_tenant(spec.tenant,
                                    rate_bps=spec.rate_bps * qos_headroom)
            if downstream:
                # A distinct deterministic stream per direction: the
                # string seed keeps replay (and cross-process shard
                # rebuilds) byte-identical without correlating the two
                # directions' jitter.
                self._profiles_down[spec.tenant] = make_profile(
                    spec.profile, spec.tenant,
                    spec.rate_bps * downstream_ratio,
                    seed=f"{seed}:downstream")
                self.downstream_scheduler.register_queue(
                    spec.serial, spec.tenant,
                    priority=spec.priority, weight=spec.weight)
                if self.qos_down is not None:
                    self.qos_down.add_tenant(
                        spec.tenant,
                        rate_bps=spec.rate_bps * downstream_ratio
                        * qos_headroom)

        self._n_cycles = 0
        self._offered: Dict[str, int] = {}
        self._delivered: Dict[str, int] = {}
        self._offered_down: Dict[str, int] = {}
        self._delivered_down: Dict[str, int] = {}
        self._latencies: Dict[str, List[float]] = {}

    @property
    def n_cycles(self) -> int:
        """Cycles the current run spans (0 before :meth:`start`)."""
        return self._n_cycles

    def offered_totals(self) -> Dict[str, int]:
        """Cumulative offered bytes per tenant since :meth:`start`."""
        return dict(self._offered)

    def delivered_totals(self) -> Dict[str, int]:
        """Cumulative delivered (granted+sent) bytes per tenant."""
        return dict(self._delivered)

    def offered_downstream_totals(self) -> Dict[str, int]:
        """Cumulative offered downstream bytes per tenant (empty when
        the downstream plane is off)."""
        return dict(self._offered_down)

    def delivered_downstream_totals(self) -> Dict[str, int]:
        """Cumulative delivered downstream bytes per tenant."""
        return dict(self._delivered_down)

    def start(self, seconds: float) -> PeriodicTask:
        """Register the per-cycle task with the sim engine.

        Does *not* advance time — the caller (or a fleet driver sharing
        the scheduler across many generators) batch-steps the world and
        then collects :meth:`report`.
        """
        if seconds <= 0:
            raise ValueError("duration must be positive")
        self._n_cycles = max(1, round(seconds / self.cycle_s))
        self._offered = {s.tenant: 0 for s in self.specs}
        self._delivered = {s.tenant: 0 for s in self.specs}
        if self.downstream_enabled:
            self._offered_down = {s.tenant: 0 for s in self.specs}
            self._delivered_down = {s.tenant: 0 for s in self.specs}
        self._latencies: Dict[str, List[float]] = {
            s.tenant: [] for s in self.specs}
        self._task = self.sim.every(
            self.cycle_s, self._cycle,
            name=f"{self.network.olt.name}/traffic-cycle",
            first_at=self._clock.now, max_fires=self._n_cycles)
        return self._task

    def _cycle(self) -> None:
        """One DBA cycle: generate, police, grant, drain, account."""
        now = self._clock.now
        cycle_offered: Dict[str, int] = {}
        arrivals: List[Request] = []
        for spec in self.specs:
            batch = self._profiles[spec.tenant].batch(now, self.cycle_s)
            nbytes = sum(r.size_bytes for r in batch)
            cycle_offered[spec.tenant] = nbytes
            self._offered[spec.tenant] += nbytes
            arrivals.extend(batch)

        if self.qos is not None:
            admitted = self.qos.admit(arrivals, now)
        else:
            admitted = arrivals
        for request in admitted:
            self._tconts[request.tenant].offer(request)

        grants = self.network.olt.run_dba_cycle(self.cycle_s)
        cycle_end = now + self.cycle_s
        cycle_delivered: Dict[str, int] = {}
        for spec in self.specs:
            tcont = self._tconts[spec.tenant]
            sent, completed = tcont.drain(
                grants.get(tcont.alloc_id, 0), cycle_end)
            cycle_delivered[spec.tenant] = sent
            if sent:
                self._delivered[spec.tenant] += sent
                self.network.send_upstream(spec.serial, b"",
                                           size_override=sent)
            self._latencies[spec.tenant].extend(
                c.latency_s for c in completed)

        self.telemetry.record_cycle(cycle_offered, cycle_delivered)
        if self.downstream_enabled:
            self._downstream_cycle(now)

    def _downstream_cycle(self, now: float) -> None:
        """The cycle's downstream half: respond, police, schedule, drain.

        Runs inside the same scheduler tick as the upstream half, so a
        fleet shard's event stream (both directions) stays a pure
        function of its config — the worker-invariance guarantee.
        """
        arrivals: List[Request] = []
        for spec in self.specs:
            batch = self._profiles_down[spec.tenant].batch(now, self.cycle_s)
            self._offered_down[spec.tenant] += sum(
                r.size_bytes for r in batch)
            arrivals.extend(batch)
        if self.qos_down is not None:
            admitted = self.qos_down.admit(arrivals, now)
        else:
            admitted = arrivals
        for request in admitted:
            self.downstream_scheduler.enqueue(request)

        results = self.network.olt.run_downstream_cycle(self.cycle_s)
        cycle_delivered: Dict[str, int] = {}
        for spec in self.specs:
            sent, _completed = results.get(spec.tenant, (0, []))
            cycle_delivered[spec.tenant] = sent
            if sent:
                self._delivered_down[spec.tenant] += sent
                self.network.send_downstream(spec.serial, b"",
                                             size_override=sent)
        self.telemetry.record_downstream_cycle(
            cycle_delivered,
            {queue.tenant: queue.queued_bytes
             for queue in self.downstream_scheduler.queues()},
            self.cycle_s)

    def report(self) -> TrafficReport:
        """Per-tenant report over the cycles run since :meth:`start`."""
        offered = self._offered
        delivered = self._delivered
        latencies = self._latencies
        duration = self._n_cycles * self.cycle_s
        total_delivered = sum(delivered.values())
        report = TrafficReport(
            duration_s=duration,
            capacity_bps=self.network.olt.upstream_bps,
            dba_enabled=self.dba_enabled, qos_enabled=self.qos_enabled,
            downstream=self.downstream_enabled,
            downstream_capacity_bps=(self.network.olt.downstream_bps
                                     if self.downstream_enabled else 0.0))
        for spec in self.specs:
            tenant_latencies = sorted(latencies[spec.tenant])
            dropped = (self.qos.policy(spec.tenant).dropped_requests
                       if self.qos is not None else 0)
            dropped_down = 0
            delivered_down = 0
            if self.downstream_enabled:
                delivered_down = self._delivered_down.get(spec.tenant, 0)
                # Downstream drops happen at two stages: QoS admission
                # and the bounded OLT queue.
                dropped_down = self.downstream_scheduler.queue(
                    spec.tenant).dropped_requests
                if self.qos_down is not None:
                    dropped_down += self.qos_down.policy(
                        spec.tenant).dropped_requests
            report.tenants[spec.tenant] = TenantReport(
                tenant=spec.tenant,
                profile=spec.profile,
                offered_bytes=offered[spec.tenant],
                admitted_bytes=(self.qos.policy(spec.tenant).admitted_bytes
                                if self.qos is not None
                                else offered[spec.tenant]),
                delivered_bytes=delivered[spec.tenant],
                dropped_requests=dropped,
                completed_requests=len(tenant_latencies),
                mean_latency_s=(sum(tenant_latencies) / len(tenant_latencies)
                                if tenant_latencies else 0.0),
                p95_latency_s=_percentile(tenant_latencies, 0.95),
                throughput_bps=delivered[spec.tenant] * 8 / duration,
                bandwidth_share=(delivered[spec.tenant] / total_delivered
                                 if total_delivered else 0.0),
                offered_down_bytes=self._offered_down.get(spec.tenant, 0),
                delivered_down_bytes=delivered_down,
                dropped_down_requests=dropped_down,
                downstream_throughput_bps=delivered_down * 8 / duration)
        return report

    def run(self, seconds: float) -> TrafficReport:
        """Simulate ``seconds`` of load; returns the per-tenant report.

        Convenience wrapper: registers the cycle task and batch-steps the
        sim engine through it. Equivalent to ``start`` + ``run_for`` +
        ``report``.
        """
        self.start(seconds)
        self.sim.run_for(self._n_cycles * self.cycle_s)
        return self.report()


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                max(0, math.ceil(q * len(sorted_values)) - 1))
    return sorted_values[index]


def standard_tenant_specs(n_tenants: int, hostile: bool = True,
                          rate_bps: float = 100e6) -> List[TenantSpec]:
    """The canonical E18 scenario: N well-behaved tenants (+1 hostile)."""
    if n_tenants < 1:
        raise ValueError("need at least one tenant")
    specs = [
        TenantSpec(tenant=f"tenant-{index:02d}",
                   serial=f"TRAF{index:04d}",
                   profile=_BENIGN_PROFILES[index % len(_BENIGN_PROFILES)],
                   rate_bps=rate_bps)
        for index in range(1, n_tenants + 1)
    ]
    if hostile:
        specs.append(TenantSpec(tenant="tenant-hostile", serial="TRAFBAD1",
                                profile="hostile", rate_bps=rate_bps,
                                priority=3))
    return specs


def run_traffic_experiment(
    n_tenants: int = 5,
    seconds: float = 2.0,
    hostile: bool = True,
    dba: bool = True,
    qos: bool = True,
    seed: int = 0,
    cycle_s: float = 0.02,
    rate_bps: float = 100e6,
    network: Optional[PonNetwork] = None,
    downstream: bool = False,
) -> TrafficReport:
    """Stand up a PON plant, run the standard scenario, return the report."""
    if network is None:
        network = PonNetwork.build("olt-traffic")
    specs = standard_tenant_specs(n_tenants, hostile=hostile, rate_bps=rate_bps)
    generator = LoadGenerator(network, specs, dba_enabled=dba,
                              qos_enabled=qos, cycle_s=cycle_s, seed=seed,
                              downstream=downstream)
    return generator.run(seconds)


def run_genio_traffic(deployment, seconds: float = 1.0, hostile: bool = True,
                      dba: bool = True, qos: bool = True, seed: int = 0,
                      rate_bps: float = 100e6,
                      cycle_s: float = 0.02) -> TrafficReport:
    """Drive tenant load through a built GENIO deployment's first OLT.

    Each ONU already attached to the OLT's PON carries one workload
    (profiles rotate through the well-behaved kinds); when ``hostile`` is
    set the last ONU's tenant floods instead.
    """
    if not deployment.olts:
        raise ValueError("deployment has no OLT nodes")
    pon = deployment.olts[0].pon
    serials = sorted(pon.onus)
    if not serials:
        raise ValueError("deployment OLT has no activated ONUs")
    specs: List[TenantSpec] = []
    for index, serial in enumerate(serials):
        last = index == len(serials) - 1
        specs.append(TenantSpec(
            tenant=f"user-{serial}",
            serial=serial,
            profile=("hostile" if hostile and last
                     else _BENIGN_PROFILES[index % len(_BENIGN_PROFILES)]),
            rate_bps=rate_bps,
            priority=3 if hostile and last else 2))
    generator = LoadGenerator(pon, specs, dba_enabled=dba, qos_enabled=qos,
                              cycle_s=cycle_s, seed=seed)
    return generator.run(seconds)

"""Per-tenant QoS enforcement: token buckets, admission, backpressure.

Sits between workload generation and the DBA grant loop — the policing
point where M17/M18's "a tenant is entitled to what it leased, no more"
becomes mechanical. Each tenant gets a :class:`TokenBucket` sized from
its subscribed rate plus a bounded admission queue:

* requests within rate are **admitted** immediately;
* requests over rate are **queued** while the queue has room (and
  **released** in later cycles as tokens refill);
* once the queue is full, requests are **dropped**.

One enforcer polices one direction (``direction="upstream"`` by
default); a bidirectional plant runs two instances over the same
machinery, and every counter and bus event carries the direction label.

Crossing the queue's high watermark publishes a ``qos.backpressure``
event on the bus (cleared on falling below the low watermark), and each
cycle with drops publishes one aggregated ``qos.drop`` event per tenant —
the signals the monitoring stack correlates with abuse findings.

Telemetry invariant: ``traffic_requests_total`` counts *terminal*
outcomes only (``admitted``/``released``/``dropped``), so its sum over
outcomes equals the number of offered requests once queues drain —
entering the queue is transient and counted separately in
``traffic_queued_requests_total``. (The original scheme counted a
queued request again on release, over-crediting bursty tenants in any
share math built on the counters.)
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.common import telemetry
from repro.common.events import EventBus
from repro.traffic.profiles import Request

__all__ = ["TokenBucket", "TenantPolicy", "QosEnforcer"]


class TokenBucket:
    """A classic token bucket: ``rate_bps`` sustained, ``burst_bytes`` deep.

    The bucket starts full. Over any interval it therefore admits at most
    ``burst_bytes + rate_bps/8 * elapsed`` bytes — the invariant the
    property tests pin down.
    """

    def __init__(self, rate_bps: float, burst_bytes: int) -> None:
        if rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        if burst_bytes <= 0:
            raise ValueError("burst_bytes must be positive")
        self.rate_bps = float(rate_bps)
        self.burst_bytes = int(burst_bytes)
        self._tokens = float(burst_bytes)
        self._last_refill = 0.0

    @property
    def tokens(self) -> float:
        return self._tokens

    def _refill(self, now: float) -> None:
        if now > self._last_refill:
            self._tokens = min(
                float(self.burst_bytes),
                self._tokens + (now - self._last_refill) * self.rate_bps / 8.0)
            self._last_refill = now

    def allow(self, size_bytes: int, now: float) -> bool:
        """Spend ``size_bytes`` tokens if available; refills from ``now``."""
        if size_bytes < 0:
            raise ValueError("size must be non-negative")
        self._refill(now)
        if size_bytes <= self._tokens:
            self._tokens -= size_bytes
            return True
        return False


@dataclass
class TenantPolicy:
    """One tenant's enforcement state.

    ``dropped_bytes`` is the lifetime total; ``_cycle_drops`` and
    ``_cycle_drop_bytes`` accumulate within one cycle and are reset by
    :meth:`QosEnforcer.cycle_end` after the aggregated ``qos.drop`` event
    is flushed.
    """

    tenant: str
    bucket: TokenBucket
    queue_limit_bytes: int
    queue: Deque[Request]
    queued_bytes: int = 0
    backpressured: bool = False
    admitted_bytes: int = 0
    dropped_bytes: int = 0
    dropped_requests: int = 0
    _cycle_drops: int = 0
    _cycle_drop_bytes: int = 0


class QosEnforcer:
    """Admission control for every tenant sharing one upstream plant."""

    HIGH_WATERMARK = 0.8
    LOW_WATERMARK = 0.5

    def __init__(self, bus: Optional[EventBus] = None, name: str = "qos",
                 registry: Optional[telemetry.MetricsRegistry] = None,
                 direction: str = "upstream") -> None:
        if direction not in ("upstream", "downstream"):
            raise ValueError("direction must be 'upstream' or 'downstream'")
        self.name = name
        self.direction = direction
        self._bus = bus
        self._policies: Dict[str, TenantPolicy] = {}
        metrics = registry if registry is not None else telemetry.active_registry()
        self._metrics = metrics
        if metrics is not None:
            self._requests_counter = metrics.counter(
                "traffic_requests_total",
                "Tenant requests, by direction and terminal admission "
                "outcome (admitted/released/dropped).",
                ("tenant", "direction", "outcome"))
            self._bytes_counter = metrics.counter(
                "traffic_bytes_total",
                "Tenant bytes, by direction and terminal admission outcome.",
                ("tenant", "direction", "outcome"))
            self._queued_counter = metrics.counter(
                "traffic_queued_requests_total",
                "Requests that entered the admission queue (transient; "
                "they terminate later as released or never, not both).",
                ("tenant", "direction"))
            self._queued_bytes_counter = metrics.counter(
                "traffic_queued_bytes_total",
                "Bytes that entered the admission queue (transient).",
                ("tenant", "direction"))

    def add_tenant(self, tenant: str, rate_bps: float,
                   burst_bytes: Optional[int] = None,
                   queue_limit_bytes: Optional[int] = None) -> TenantPolicy:
        """Register a tenant's subscribed rate; returns its policy."""
        if tenant in self._policies:
            raise ValueError(f"tenant {tenant} already registered")
        burst = burst_bytes if burst_bytes is not None else max(
            1, int(rate_bps / 8 * 0.1))          # 100 ms of line rate
        queue_limit = queue_limit_bytes if queue_limit_bytes is not None \
            else burst * 4
        policy = TenantPolicy(tenant=tenant,
                              bucket=TokenBucket(rate_bps, burst),
                              queue_limit_bytes=queue_limit,
                              queue=deque())
        self._policies[tenant] = policy
        return policy

    def policy(self, tenant: str) -> TenantPolicy:
        policy = self._policies.get(tenant)
        if policy is None:
            raise KeyError(f"tenant {tenant} is not registered with QoS")
        return policy

    # -- admission --------------------------------------------------------------

    def submit(self, request: Request, now: float) -> str:
        """Police one request; returns 'admitted', 'queued' or 'dropped'."""
        policy = self.policy(request.tenant)
        if not policy.queue and policy.bucket.allow(request.size_bytes, now):
            self._account(policy, request, "admitted")
            return "admitted"
        if policy.queued_bytes + request.size_bytes <= policy.queue_limit_bytes:
            policy.queue.append(request)
            policy.queued_bytes += request.size_bytes
            self._account(policy, request, "queued")
            self._check_backpressure(policy, now)
            return "queued"
        policy.dropped_requests += 1
        policy.dropped_bytes += request.size_bytes
        policy._cycle_drops += 1
        policy._cycle_drop_bytes += request.size_bytes
        self._account(policy, request, "dropped")
        return "dropped"

    def admit(self, requests: List[Request], now: float) -> List[Request]:
        """Police a batch: drain queued backlog first, then new arrivals.

        Returns every request admitted this cycle, queue-first (FIFO
        within a tenant is preserved; across tenants the arrival order of
        the input is preserved).

        This is the vectorized admission path: arrivals are grouped per
        tenant, each tenant's bucket is refilled once and charged one
        aggregate token spend for the cycle, and telemetry is batched
        into one counter ``inc`` per ``(tenant, outcome)`` instead of one
        per request. Per-request decisions replicate :meth:`submit`'s
        arithmetic exactly — the slower :meth:`admit_reference` is the
        oracle a property test pins this path against.
        """
        admitted: List[Request] = []
        for policy in self._policies.values():
            admitted.extend(self._drain_queue(policy, now))
        if requests:
            groups: Dict[str, List[Request]] = {}
            for request in requests:
                group = groups.get(request.tenant)
                if group is None:
                    groups[request.tenant] = [request]
                else:
                    group.append(request)
            outcomes = {
                tenant: self._admit_tenant_batch(self.policy(tenant),
                                                 group, now)
                for tenant, group in groups.items()}
            cursors = dict.fromkeys(groups, 0)
            for request in requests:
                index = cursors[request.tenant]
                cursors[request.tenant] = index + 1
                if outcomes[request.tenant][index]:
                    admitted.append(request)
        self.cycle_end(now)
        return admitted

    def admit_reference(self, requests: List[Request],
                        now: float) -> List[Request]:
        """The per-request admission path :meth:`admit` must match.

        Kept as the oracle: property tests assert :meth:`admit` produces
        identical outcomes, policy state and bus events, and the E20
        benchmark measures the vectorized path's speedup against it.
        """
        admitted: List[Request] = []
        for policy in self._policies.values():
            admitted.extend(self._drain_queue(policy, now))
        for request in requests:
            if self.submit(request, now) == "admitted":
                admitted.append(request)
        self.cycle_end(now)
        return admitted

    def _admit_tenant_batch(self, policy: TenantPolicy,
                            group: List[Request], now: float) -> List[bool]:
        """Decide one tenant's cycle batch; returns admitted flags in order.

        One bucket refill up front, one aggregate token writeback at the
        end; the decision loop runs on local variables. The queue/drop
        boundary stays per-request (live queue state decides), so
        outcomes — including the per-request backpressure checks on the
        queued path — are unchanged from :meth:`submit`.
        """
        bucket = policy.bucket
        bucket._refill(now)
        tokens = bucket._tokens
        queue = policy.queue
        queue_limit = policy.queue_limit_bytes
        flags: List[bool] = []
        admitted_n = admitted_bytes = 0
        queued_n = queued_bytes = 0
        dropped_n = dropped_bytes = 0
        for request in group:
            size = request.size_bytes
            if not queue and size <= tokens:
                # Sequential subtraction on a local mirrors submit()'s
                # float arithmetic exactly (token spends do not commute
                # in float, so no sum-then-subtract shortcut).
                tokens -= size
                admitted_n += 1
                admitted_bytes += size
                flags.append(True)
                continue
            flags.append(False)
            if policy.queued_bytes + size <= queue_limit:
                queue.append(request)
                policy.queued_bytes += size
                queued_n += 1
                queued_bytes += size
                self._check_backpressure(policy, now)
            else:
                policy.dropped_requests += 1
                policy.dropped_bytes += size
                policy._cycle_drops += 1
                policy._cycle_drop_bytes += size
                dropped_n += 1
                dropped_bytes += size
        bucket._tokens = tokens
        policy.admitted_bytes += admitted_bytes
        if self._metrics is not None:
            for outcome, count, nbytes in (
                    ("admitted", admitted_n, admitted_bytes),
                    ("dropped", dropped_n, dropped_bytes)):
                if count:
                    self._requests_counter.inc(
                        count, tenant=policy.tenant,
                        direction=self.direction, outcome=outcome)
                    self._bytes_counter.inc(
                        nbytes, tenant=policy.tenant,
                        direction=self.direction, outcome=outcome)
            if queued_n:
                self._queued_counter.inc(queued_n, tenant=policy.tenant,
                                         direction=self.direction)
                self._queued_bytes_counter.inc(
                    queued_bytes, tenant=policy.tenant,
                    direction=self.direction)
        return flags

    def _drain_queue(self, policy: TenantPolicy, now: float) -> List[Request]:
        released: List[Request] = []
        released_bytes = 0
        while policy.queue:
            head = policy.queue[0]
            if not policy.bucket.allow(head.size_bytes, now):
                break
            policy.queue.popleft()
            policy.queued_bytes -= head.size_bytes
            released_bytes += head.size_bytes
            released.append(head)
        # The watermark can only have moved if something left the queue;
        # skip the no-op check (and its fill arithmetic) otherwise.
        # Releases are a distinct terminal outcome (the request was
        # already counted "queued" once) and their telemetry is batched:
        # one inc per tenant per drain, like _admit_tenant_batch.
        if released:
            policy.admitted_bytes += released_bytes
            if self._metrics is not None:
                self._requests_counter.inc(
                    len(released), tenant=policy.tenant,
                    direction=self.direction, outcome="released")
                self._bytes_counter.inc(
                    released_bytes, tenant=policy.tenant,
                    direction=self.direction, outcome="released")
            self._check_backpressure(policy, now)
        return released

    def cycle_end(self, now: float) -> None:
        """Flush aggregated per-cycle drop events.

        Each tenant with drops this cycle gets one ``qos.drop`` event
        whose ``dropped``/``dropped_bytes`` are *this cycle's* counts
        (reset afterwards); the lifetime total rides along as
        ``dropped_bytes_total``.
        """
        if self._bus is None:
            for policy in self._policies.values():
                policy._cycle_drops = 0
                policy._cycle_drop_bytes = 0
            return
        for policy in self._policies.values():
            if policy._cycle_drops:
                self._bus.emit(
                    "qos.drop", self.name, now, tenant=policy.tenant,
                    direction=self.direction,
                    dropped=policy._cycle_drops,
                    dropped_bytes=policy._cycle_drop_bytes,
                    dropped_bytes_total=policy.dropped_bytes)
                policy._cycle_drops = 0
                policy._cycle_drop_bytes = 0

    # -- internals --------------------------------------------------------------

    def _account(self, policy: TenantPolicy, request: Request,
                 outcome: str) -> None:
        if outcome == "admitted":
            policy.admitted_bytes += request.size_bytes
        if self._metrics is None:
            return
        if outcome == "queued":
            # Transient, not terminal — a queued request terminates later
            # as released (or sits in the queue), so it must not land in
            # traffic_requests_total or the outcome sum would exceed the
            # offered count.
            self._queued_counter.inc(tenant=policy.tenant,
                                     direction=self.direction)
            self._queued_bytes_counter.inc(request.size_bytes,
                                           tenant=policy.tenant,
                                           direction=self.direction)
            return
        self._requests_counter.inc(tenant=policy.tenant,
                                   direction=self.direction, outcome=outcome)
        self._bytes_counter.inc(request.size_bytes, tenant=policy.tenant,
                                direction=self.direction, outcome=outcome)

    def _check_backpressure(self, policy: TenantPolicy, now: float) -> None:
        fill = (policy.queued_bytes / policy.queue_limit_bytes
                if policy.queue_limit_bytes else 0.0)
        if not policy.backpressured and fill >= self.HIGH_WATERMARK:
            policy.backpressured = True
            if self._bus is not None:
                self._bus.emit("qos.backpressure", self.name, now,
                               tenant=policy.tenant, state="asserted",
                               direction=self.direction,
                               queue_fill=round(fill, 3))
        elif policy.backpressured and fill <= self.LOW_WATERMARK:
            policy.backpressured = False
            if self._bus is not None:
                self._bus.emit("qos.backpressure", self.name, now,
                               tenant=policy.tenant, state="cleared",
                               direction=self.direction,
                               queue_fill=round(fill, 3))

"""Per-tenant QoS enforcement: token buckets, admission, backpressure.

Sits between workload generation and the DBA grant loop — the policing
point where M17/M18's "a tenant is entitled to what it leased, no more"
becomes mechanical. Each tenant gets a :class:`TokenBucket` sized from
its subscribed rate plus a bounded admission queue:

* requests within rate are **admitted** immediately;
* requests over rate are **queued** while the queue has room (and retried
  each cycle as tokens refill);
* once the queue is full, requests are **dropped**.

Crossing the queue's high watermark publishes a ``qos.backpressure``
event on the bus (cleared on falling below the low watermark), and each
cycle with drops publishes one aggregated ``qos.drop`` event per tenant —
the signals the monitoring stack correlates with abuse findings. All
outcomes feed tenant-labelled counters in the telemetry registry.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.common import telemetry
from repro.common.events import EventBus
from repro.traffic.profiles import Request

__all__ = ["TokenBucket", "TenantPolicy", "QosEnforcer"]


class TokenBucket:
    """A classic token bucket: ``rate_bps`` sustained, ``burst_bytes`` deep.

    The bucket starts full. Over any interval it therefore admits at most
    ``burst_bytes + rate_bps/8 * elapsed`` bytes — the invariant the
    property tests pin down.
    """

    def __init__(self, rate_bps: float, burst_bytes: int) -> None:
        if rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        if burst_bytes <= 0:
            raise ValueError("burst_bytes must be positive")
        self.rate_bps = float(rate_bps)
        self.burst_bytes = int(burst_bytes)
        self._tokens = float(burst_bytes)
        self._last_refill = 0.0

    @property
    def tokens(self) -> float:
        return self._tokens

    def _refill(self, now: float) -> None:
        if now > self._last_refill:
            self._tokens = min(
                float(self.burst_bytes),
                self._tokens + (now - self._last_refill) * self.rate_bps / 8.0)
            self._last_refill = now

    def allow(self, size_bytes: int, now: float) -> bool:
        """Spend ``size_bytes`` tokens if available; refills from ``now``."""
        if size_bytes < 0:
            raise ValueError("size must be non-negative")
        self._refill(now)
        if size_bytes <= self._tokens:
            self._tokens -= size_bytes
            return True
        return False


@dataclass
class TenantPolicy:
    """One tenant's enforcement state."""

    tenant: str
    bucket: TokenBucket
    queue_limit_bytes: int
    queue: Deque[Request]
    queued_bytes: int = 0
    backpressured: bool = False
    admitted_bytes: int = 0
    dropped_bytes: int = 0
    dropped_requests: int = 0
    _cycle_drops: int = 0


class QosEnforcer:
    """Admission control for every tenant sharing one upstream plant."""

    HIGH_WATERMARK = 0.8
    LOW_WATERMARK = 0.5

    def __init__(self, bus: Optional[EventBus] = None, name: str = "qos",
                 registry: Optional[telemetry.MetricsRegistry] = None) -> None:
        self.name = name
        self._bus = bus
        self._policies: Dict[str, TenantPolicy] = {}
        metrics = registry if registry is not None else telemetry.active_registry()
        self._metrics = metrics
        if metrics is not None:
            self._requests_counter = metrics.counter(
                "traffic_requests_total",
                "Tenant upstream requests, by admission outcome.",
                ("tenant", "outcome"))
            self._bytes_counter = metrics.counter(
                "traffic_bytes_total",
                "Tenant upstream bytes, by admission outcome.",
                ("tenant", "outcome"))

    def add_tenant(self, tenant: str, rate_bps: float,
                   burst_bytes: Optional[int] = None,
                   queue_limit_bytes: Optional[int] = None) -> TenantPolicy:
        """Register a tenant's subscribed rate; returns its policy."""
        if tenant in self._policies:
            raise ValueError(f"tenant {tenant} already registered")
        burst = burst_bytes if burst_bytes is not None else max(
            1, int(rate_bps / 8 * 0.1))          # 100 ms of line rate
        queue_limit = queue_limit_bytes if queue_limit_bytes is not None \
            else burst * 4
        policy = TenantPolicy(tenant=tenant,
                              bucket=TokenBucket(rate_bps, burst),
                              queue_limit_bytes=queue_limit,
                              queue=deque())
        self._policies[tenant] = policy
        return policy

    def policy(self, tenant: str) -> TenantPolicy:
        policy = self._policies.get(tenant)
        if policy is None:
            raise KeyError(f"tenant {tenant} is not registered with QoS")
        return policy

    # -- admission --------------------------------------------------------------

    def submit(self, request: Request, now: float) -> str:
        """Police one request; returns 'admitted', 'queued' or 'dropped'."""
        policy = self.policy(request.tenant)
        if not policy.queue and policy.bucket.allow(request.size_bytes, now):
            self._account(policy, request, "admitted")
            return "admitted"
        if policy.queued_bytes + request.size_bytes <= policy.queue_limit_bytes:
            policy.queue.append(request)
            policy.queued_bytes += request.size_bytes
            self._account(policy, request, "queued")
            self._check_backpressure(policy, now)
            return "queued"
        policy.dropped_requests += 1
        policy.dropped_bytes += request.size_bytes
        policy._cycle_drops += 1
        self._account(policy, request, "dropped")
        return "dropped"

    def admit(self, requests: List[Request], now: float) -> List[Request]:
        """Police a batch: drain queued backlog first, then new arrivals.

        Returns every request admitted this cycle, queue-first (FIFO
        within a tenant is preserved).
        """
        admitted: List[Request] = []
        for policy in self._policies.values():
            admitted.extend(self._drain_queue(policy, now))
        for request in requests:
            if self.submit(request, now) == "admitted":
                admitted.append(request)
        self.cycle_end(now)
        return admitted

    def _drain_queue(self, policy: TenantPolicy, now: float) -> List[Request]:
        released: List[Request] = []
        while policy.queue:
            head = policy.queue[0]
            if not policy.bucket.allow(head.size_bytes, now):
                break
            policy.queue.popleft()
            policy.queued_bytes -= head.size_bytes
            self._account(policy, head, "admitted")
            released.append(head)
        self._check_backpressure(policy, now)
        return released

    def cycle_end(self, now: float) -> None:
        """Flush aggregated per-cycle drop events."""
        if self._bus is None:
            for policy in self._policies.values():
                policy._cycle_drops = 0
            return
        for policy in self._policies.values():
            if policy._cycle_drops:
                self._bus.emit(
                    "qos.drop", self.name, now, tenant=policy.tenant,
                    dropped=policy._cycle_drops,
                    dropped_bytes=policy.dropped_bytes)
                policy._cycle_drops = 0

    # -- internals --------------------------------------------------------------

    def _account(self, policy: TenantPolicy, request: Request,
                 outcome: str) -> None:
        if outcome == "admitted":
            policy.admitted_bytes += request.size_bytes
        if self._metrics is not None:
            self._requests_counter.inc(tenant=policy.tenant, outcome=outcome)
            self._bytes_counter.inc(request.size_bytes,
                                    tenant=policy.tenant, outcome=outcome)

    def _check_backpressure(self, policy: TenantPolicy, now: float) -> None:
        fill = (policy.queued_bytes / policy.queue_limit_bytes
                if policy.queue_limit_bytes else 0.0)
        if not policy.backpressured and fill >= self.HIGH_WATERMARK:
            policy.backpressured = True
            if self._bus is not None:
                self._bus.emit("qos.backpressure", self.name, now,
                               tenant=policy.tenant, state="asserted",
                               queue_fill=round(fill, 3))
        elif policy.backpressured and fill <= self.LOW_WATERMARK:
            policy.backpressured = False
            if self._bus is not None:
                self._bus.emit("qos.backpressure", self.name, now,
                               tenant=policy.tenant, state="cleared",
                               queue_fill=round(fill, 3))

"""MACsec (IEEE 802.1AE style) for point-to-point Ethernet segments.

GENIO's M3 mitigation encrypts inter-OLT and OLT-to-cloud Ethernet with
MACsec: AES-GCM over the frame payload with the MAC addresses and a
monotonically increasing packet number (PN) as authenticated associated
data. The PN gives *replay protection* — a receiver rejects any frame
whose PN is not strictly greater than the last accepted one, which is the
property the replay-attack experiment exercises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common import crypto, telemetry
from repro.common.errors import IntegrityError
from repro.pon.frames import Frame, FrameKind


@dataclass
class MacsecStats:
    """Counters mirroring the 802.1AE MIB (subset)."""

    protected: int = 0
    validated: int = 0
    replayed: int = 0
    tag_failures: int = 0


class MacsecChannel:
    """One secure channel direction between two stations sharing a SAK.

    A full MACsec deployment derives the Secure Association Key (SAK) via
    MKA/802.1X; here the SAK is provisioned directly (GENIO provisions it
    during authenticated onboarding, see :mod:`repro.security.comms`).
    """

    def __init__(self, sak: bytes, replay_protect: bool = True,
                 replay_window: int = 0) -> None:
        """``replay_window`` mirrors 802.1AE's bounded-out-of-order
        acceptance: a frame whose PN lags the highest seen by at most the
        window (and was not already accepted) still validates; window 0 is
        strict in-order."""
        if not sak:
            raise ValueError("SAK must be non-empty")
        if replay_window < 0:
            raise ValueError("replay window must be >= 0")
        self._sak = sak
        self.replay_protect = replay_protect
        self.replay_window = replay_window
        self._next_pn = 1
        self._highest_seen_pn = 0
        self._accepted_in_window: set = set()
        self.stats = MacsecStats()
        metrics = telemetry.active_registry()
        self._frames_counter = None if metrics is None else metrics.counter(
            "macsec_frames_total", "MACsec operations, by result.",
            ("result",))

    def _count(self, result: str) -> None:
        if self._frames_counter is not None:
            self._frames_counter.inc(result=result)

    def protect(self, frame: Frame) -> Frame:
        """Encapsulate a plaintext frame into a MACsec-protected frame."""
        pn = self._next_pn
        self._next_pn += 1
        aad = self._aad(frame.src, frame.dst, pn)
        blob = crypto.aead_encrypt(self._sak, frame.payload, associated_data=aad)
        self.stats.protected += 1
        self._count("protected")
        return (
            frame.with_payload(blob, secure=True)
            .with_header("macsec_pn", pn)
        )

    def validate(self, frame: Frame) -> Frame:
        """Verify and decapsulate a protected frame.

        :raises IntegrityError: replayed packet number, tampered payload,
            or a frame protected under a different SAK.
        """
        pn = frame.headers.get("macsec_pn")
        if not isinstance(pn, int):
            self.stats.tag_failures += 1
            self._count("tag_failure")
            raise IntegrityError("frame lacks a MACsec packet number")
        if self.replay_protect and pn <= self._highest_seen_pn:
            in_window = (self._highest_seen_pn - pn) < self.replay_window
            if not in_window or pn in self._accepted_in_window:
                self.stats.replayed += 1
                self._count("replay_rejected")
                raise IntegrityError(f"replayed packet number {pn}")
        aad = self._aad(frame.src, frame.dst, pn)
        try:
            plaintext = crypto.aead_decrypt(self._sak, frame.payload, associated_data=aad)
        except IntegrityError:
            self.stats.tag_failures += 1
            self._count("tag_failure")
            raise
        if pn > self._highest_seen_pn:
            self._highest_seen_pn = pn
            floor = self._highest_seen_pn - self.replay_window
            self._accepted_in_window = {
                seen for seen in self._accepted_in_window if seen >= floor}
        self._accepted_in_window.add(pn)
        self.stats.validated += 1
        self._count("validated")
        return frame.with_payload(plaintext, secure=False)

    @staticmethod
    def _aad(src: str, dst: str, pn: int) -> bytes:
        return f"{src}>{dst}#{pn}".encode()


class MacsecPair:
    """Convenience: the two unidirectional channels of one MACsec link."""

    def __init__(self, sak: bytes, replay_protect: bool = True) -> None:
        self.a_to_b = MacsecChannel(sak, replay_protect=replay_protect)
        self.b_to_a = MacsecChannel(sak, replay_protect=replay_protect)

    @staticmethod
    def control_frame(src: str, dst: str, payload: bytes) -> Frame:
        """Helper building a control-plane frame for key agreement tests."""
        return Frame(src=src, dst=dst, kind=FrameKind.KEY_EXCHANGE, payload=payload)


def derive_sak(shared_secret: bytes, link_name: str) -> bytes:
    """Derive a per-link SAK from a handshake's shared secret (KDF-style)."""
    return crypto.hmac_sha256(shared_secret, b"macsec-sak:" + link_name.encode())

"""Optical Line Terminal (OLT) model.

The OLT lives in the telecom central office and terminates the PON. In
GENIO it is repurposed as an edge-computing hub: x86 COTS hardware running
ONL Linux, KVM virtual machines and Kubernetes (Figure 2). This module
models the *network* face of the OLT — PON ports, ONU activation,
downstream broadcast, upstream reception, GEM encryption. The *compute*
face (the host OS, VMs, containers) is modelled by :mod:`repro.osmodel`
and :mod:`repro.virt` and attached by :mod:`repro.platform`.

ONU activation is deliberately two-mode:

* ``serial`` — legacy GPON behaviour: any device announcing a known serial
  number is activated. This is what makes T1 ONU impersonation work.
* ``certificate`` — the M4 mitigation: the announcing device must present
  a certificate chaining to the operator PKI *and* prove possession of the
  key via a signed challenge. The verifier is injected by the security
  layer so this substrate stays dependency-free.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, NamedTuple, Optional

from repro.common import crypto, telemetry
from repro.common.clock import SimClock
from repro.common.errors import AuthenticationError, CapacityError, NotFoundError
from repro.common.events import EventBus
from repro.pon.fiber import FiberSpan
from repro.pon.frames import Frame, FrameKind, GemFrame
from repro.pon.gpon import GponKeyServer
from repro.pon.onu import Onu

# (certificate, challenge, signature) -> subject serial, or raise.
CertificateVerifier = Callable[[object, bytes, bytes], str]


@dataclass
class ActivationRecord:
    """Outcome of one ONU activation attempt (the onboarding audit log)."""

    serial: str
    mode: str
    accepted: bool
    reason: str
    timestamp: float


class DownstreamTx(NamedTuple):
    """Outcome of one downstream transmission.

    ``wire_bytes`` is the GEM frame's actual on-the-wire size *after*
    optional G.987.3 encryption — the single size every accounting layer
    (OLT counters, plant stats) must agree on.
    """

    delay_s: float
    wire_bytes: int


@dataclass
class PonPort:
    """One PON port: a fiber span shared by up to ``split_ratio`` ONUs."""

    index: int
    span: FiberSpan
    onus: Dict[str, Onu] = field(default_factory=dict)
    split_ratio: int = 64    # 1:64 optical splitter


class Olt:
    """An OLT: PON ports plus the activation and encryption machinery."""

    def __init__(
        self,
        name: str,
        clock: Optional[SimClock] = None,
        bus: Optional[EventBus] = None,
        auth_mode: str = "serial",
        rng: Optional[random.Random] = None,
        upstream_bps: float = 1.244e9,    # G.984 upstream line rate
        downstream_bps: float = 2.488e9,  # G.984 downstream line rate
    ) -> None:
        if auth_mode not in ("serial", "certificate"):
            raise ValueError("auth_mode must be 'serial' or 'certificate'")
        if upstream_bps <= 0:
            raise ValueError("upstream_bps must be positive")
        if downstream_bps <= 0:
            raise ValueError("downstream_bps must be positive")
        self.name = name
        self.upstream_bps = float(upstream_bps)
        self.downstream_bps = float(downstream_bps)
        self.dba = None    # duck-typed DBA scheduler (repro.traffic.dba)
        # duck-typed downstream scheduler (repro.traffic.downstream)
        self.downstream = None
        self._clock = clock or SimClock()
        self._bus = bus
        self.auth_mode = auth_mode
        self._rng = rng or random.Random(0x017)
        self.key_server = GponKeyServer(rng=self._rng)
        self.encryption_enabled = False
        self.ports: Dict[int, PonPort] = {}
        self.provisioned_serials: Dict[str, int] = {}  # serial -> gem_port
        # serial -> expected firmware hash; when set for a serial, the ONU
        # must attest matching firmware at activation (anti-T2 on ONUs).
        self.expected_firmware: Dict[str, str] = {}
        self.activation_log: List[ActivationRecord] = []
        self.certificate_verifier: Optional[CertificateVerifier] = None
        self.upstream_frames: List[Frame] = []
        self._next_gem_port = 1000
        metrics = telemetry.active_registry()
        self._metrics = metrics
        if metrics is not None:
            self._frames_counter = metrics.counter(
                "pon_frames_total", "PON frames transmitted, by direction.",
                ("direction",))
            self._bytes_counter = metrics.counter(
                "pon_bytes_total", "PON payload bytes carried, by direction.",
                ("direction",))
            self._encrypted_counter = metrics.counter(
                "pon_gem_encrypted_total",
                "Downstream GEM frames protected by G.987.3 encryption.")
            self._activation_counter = metrics.counter(
                "pon_activations_total", "ONU activation attempts, by outcome.",
                ("accepted",))

    # -- provisioning ----------------------------------------------------------

    def add_port(self, index: int, span: FiberSpan) -> PonPort:
        """Attach a PON port backed by ``span``."""
        if index in self.ports:
            raise ValueError(f"port {index} already exists on {self.name}")
        port = PonPort(index=index, span=span)
        span.attach_receiver(self._deliver_downstream_to_port_factory(port))
        self.ports[index] = port
        return port

    def provision_serial(self, serial: str) -> int:
        """Pre-provision a subscriber serial, assigning it a GEM port."""
        if serial not in self.provisioned_serials:
            self.provisioned_serials[serial] = self._next_gem_port
            self._next_gem_port += 1
        return self.provisioned_serials[serial]

    def enable_encryption(self) -> None:
        """Turn on G.987.3 downstream payload encryption (part of M3)."""
        self.encryption_enabled = True

    def set_certificate_verifier(self, verifier: CertificateVerifier) -> None:
        """Install the PKI verifier and switch activation to certificate mode."""
        self.certificate_verifier = verifier
        self.auth_mode = "certificate"

    # -- activation (the M4 battleground) ---------------------------------------

    def make_challenge(self) -> bytes:
        """Fresh nonce the activating ONU must sign in certificate mode."""
        return self._rng.getrandbits(128).to_bytes(16, "big")

    def activate_onu(
        self,
        port_index: int,
        onu: Onu,
        certificate: Optional[object] = None,
        challenge: Optional[bytes] = None,
        challenge_signature: Optional[bytes] = None,
    ) -> int:
        """Attempt to activate ``onu`` on a port; returns its GEM port.

        :raises AuthenticationError: unknown serial, or (in certificate
            mode) a missing/invalid credential.
        """
        port = self._port(port_index)
        serial = onu.serial
        if serial not in self.provisioned_serials:
            self._log_activation(serial, accepted=False, reason="unknown serial")
            raise AuthenticationError(f"serial {serial} is not provisioned")

        if self.auth_mode == "certificate":
            reason = self._verify_certificate(serial, certificate, challenge, challenge_signature)
            if reason is not None:
                self._log_activation(serial, accepted=False, reason=reason)
                raise AuthenticationError(f"activation of {serial} rejected: {reason}")

        expected_hash = self.expected_firmware.get(serial)
        if expected_hash is not None and onu.firmware_hash() != expected_hash:
            reason = (f"firmware measurement mismatch: expected "
                      f"{expected_hash[:12]}..., device reports "
                      f"{onu.firmware_hash()[:12]}...")
            self._log_activation(serial, accepted=False, reason=reason)
            raise AuthenticationError(
                f"activation of {serial} rejected: {reason}")

        if serial not in port.onus and len(port.onus) >= port.split_ratio:
            self._log_activation(serial, accepted=False,
                                 reason="splitter at capacity")
            raise CapacityError(
                f"port {port_index} splitter (1:{port.split_ratio}) is full")

        gem_port = self.provisioned_serials[serial]
        onu.assign_gem_port(gem_port)
        onu.activated = True
        port.onus[serial] = onu
        key = self.key_server.establish(gem_port)
        if self.encryption_enabled:
            onu.decryptor.install_key(gem_port, key.key, key.index)
        self._log_activation(serial, accepted=True, reason="activated")
        return gem_port

    def _verify_certificate(
        self,
        serial: str,
        certificate: Optional[object],
        challenge: Optional[bytes],
        signature: Optional[bytes],
    ) -> Optional[str]:
        """Return a rejection reason, or None if the credential verifies."""
        if self.certificate_verifier is None:
            return "certificate mode enabled but no verifier installed"
        if certificate is None or challenge is None or signature is None:
            return "missing certificate, challenge, or signature"
        try:
            subject = self.certificate_verifier(certificate, challenge, signature)
        except AuthenticationError as exc:
            return str(exc)
        if subject != serial:
            return f"certificate subject {subject!r} does not match serial {serial!r}"
        return None

    # -- the upstream DBA grant loop --------------------------------------------

    def attach_dba(self, scheduler) -> None:
        """Install a DBA scheduler (anything with a ``grant`` method).

        The OLT owns the upstream capacity; the scheduler decides how one
        cycle's worth of it is split across T-CONTs. Kept duck-typed so
        the PON substrate stays below :mod:`repro.traffic` in the layer
        order.
        """
        if not hasattr(scheduler, "grant"):
            raise TypeError("a DBA scheduler must expose grant(capacity, now)")
        self.dba = scheduler

    def run_dba_cycle(self, cycle_s: float) -> Dict[int, int]:
        """Grant one upstream cycle; returns alloc_id -> granted bytes.

        :raises ValueError: no scheduler attached, or non-positive cycle.
        """
        if self.dba is None:
            raise ValueError(f"OLT {self.name} has no DBA scheduler attached")
        if cycle_s <= 0:
            raise ValueError("cycle must be positive")
        capacity_bytes = int(self.upstream_bps / 8.0 * cycle_s)
        return self.dba.grant(capacity_bytes, now=self._clock.now)

    # -- the downstream scheduling cycle -----------------------------------------

    def attach_downstream(self, scheduler) -> None:
        """Install a downstream scheduler (anything with ``run_cycle``).

        The OLT owns the downstream broadcast capacity; the scheduler
        decides how one cycle's worth of it is split across per-ONU
        queues. Duck-typed for the same layering reason as
        :meth:`attach_dba`.
        """
        if not hasattr(scheduler, "run_cycle"):
            raise TypeError(
                "a downstream scheduler must expose run_cycle(capacity, now)")
        self.downstream = scheduler

    def run_downstream_cycle(self, cycle_s: float):
        """Schedule one downstream cycle; returns the scheduler's result.

        :raises ValueError: no scheduler attached, or non-positive cycle.
        """
        if self.downstream is None:
            raise ValueError(
                f"OLT {self.name} has no downstream scheduler attached")
        if cycle_s <= 0:
            raise ValueError("cycle must be positive")
        capacity_bytes = int(self.downstream_bps / 8.0 * cycle_s)
        return self.downstream.run_cycle(capacity_bytes, now=self._clock.now)

    # -- traffic -----------------------------------------------------------------

    def send_downstream(self, port_index: int, serial: str, payload: bytes,
                        kind: FrameKind = FrameKind.DATA,
                        size_override: Optional[int] = None) -> DownstreamTx:
        """Broadcast a downstream frame for one subscriber across the PON.

        Returns the transmission delay plus the frame's on-the-wire size
        (post-encryption ``gem.size`` — the one number counters and plant
        stats must both use). ``size_override`` lets a scheduling cycle's
        aggregated drain travel as a single frame accounting as its full
        size without materialising payload bytes, mirroring the upstream
        path. The frame physically reaches every ONU (and tap) on the
        span — only encryption limits who can read it.
        """
        port = self._port(port_index)
        gem_port = self.provisioned_serials.get(serial)
        if gem_port is None:
            raise NotFoundError(f"serial {serial} is not provisioned")
        frame = Frame(src=self.name, dst=serial, kind=kind, payload=payload,
                      size_override=size_override)
        gem = GemFrame(gem_port=gem_port, inner=frame)
        if self.encryption_enabled:
            gem = self.key_server.encrypt(gem)
        wire_bytes = gem.size
        if self._metrics is not None:
            self._frames_counter.inc(direction="downstream")
            self._bytes_counter.inc(wire_bytes, direction="downstream")
            if self.encryption_enabled:
                self._encrypted_counter.inc()
        delay = port.span.transmit(gem, wire_bytes)
        return DownstreamTx(delay_s=delay, wire_bytes=wire_bytes)

    def receive_upstream(self, frame: Frame) -> None:
        """Accept an upstream frame from an activated ONU."""
        self.upstream_frames.append(frame)
        if self._metrics is not None:
            self._frames_counter.inc(direction="upstream")
            self._bytes_counter.inc(frame.size, direction="upstream")
        if self._bus is not None:
            self._bus.emit(
                "pon.upstream", self.name, self._clock.now,
                src=frame.src, kind=frame.kind.value, size=frame.size,
            )

    # -- internals ------------------------------------------------------------------

    def _deliver_downstream_to_port_factory(self, port: PonPort) -> Callable[[GemFrame], None]:
        def deliver(gem: GemFrame) -> None:
            for onu in port.onus.values():
                onu.receive_gem(gem)
        return deliver

    def _port(self, index: int) -> PonPort:
        port = self.ports.get(index)
        if port is None:
            raise NotFoundError(f"OLT {self.name} has no port {index}")
        return port

    def _log_activation(self, serial: str, accepted: bool, reason: str) -> None:
        record = ActivationRecord(
            serial=serial,
            mode=self.auth_mode,
            accepted=accepted,
            reason=reason,
            timestamp=self._clock.now,
        )
        self.activation_log.append(record)
        if self._metrics is not None:
            self._activation_counter.inc(accepted=str(accepted).lower())
        if self._bus is not None:
            self._bus.emit(
                "pon.activation", self.name, self._clock.now,
                serial=serial, accepted=accepted, reason=reason, mode=self.auth_mode,
            )

    def __repr__(self) -> str:
        return f"Olt(name={self.name!r}, ports={len(self.ports)}, auth={self.auth_mode})"

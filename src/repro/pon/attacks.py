"""T1 network attacks against the PON plant.

Implements the attacker side of the paper's infrastructure-level network
threats so experiments can demonstrate that M3/M4 actually defeat them:

* :class:`FiberTapAttack` — passive interception via a spliced tap
  (succeeds iff it recovers plaintext payloads).
* :class:`ReplayAttack` — capture-and-reinject on an Ethernet segment
  (succeeds iff the receiver accepts the duplicate).
* :class:`OnuImpersonationAttack` — a rogue device announces a victim's
  serial number (succeeds iff the OLT activates it).
* :class:`DownstreamHijackAttack` — active injection of crafted downstream
  GEM frames (succeeds iff a victim ONU accepts the forged payload).

Every attack returns an :class:`AttackResult` so the E4 attack/defense
matrix can tabulate outcomes uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.common.errors import AuthenticationError, IntegrityError, NotFoundError
from repro.pon.fiber import EthernetLink, FiberTap
from repro.pon.frames import Frame, FrameKind, GemFrame
from repro.pon.macsec import MacsecChannel
from repro.pon.network import PonNetwork
from repro.pon.onu import Onu


@dataclass
class AttackResult:
    """Uniform outcome record for the attack/defense matrix."""

    attack: str
    succeeded: bool
    detail: str
    evidence: List[str] = field(default_factory=list)


class FiberTapAttack:
    """Splice a passive tap into a PON span and read what flows by."""

    def __init__(self, network: PonNetwork, port_index: int = 0) -> None:
        self.network = network
        self.tap: FiberTap[GemFrame] = FiberTap(name="bend-coupler")
        network.span(port_index).attach_tap(self.tap)

    def run(self) -> AttackResult:
        """Evaluate what the tap captured so far."""
        plaintexts = []
        for gem in self.tap.captured:
            if not gem.encrypted and gem.inner.payload:
                plaintexts.append(gem.inner.payload)
        if plaintexts:
            sample = plaintexts[0][:40].decode("utf-8", errors="replace")
            return AttackResult(
                attack="fiber-tap",
                succeeded=True,
                detail=f"recovered {len(plaintexts)} plaintext payloads",
                evidence=[sample],
            )
        return AttackResult(
            attack="fiber-tap",
            succeeded=False,
            detail=(
                f"captured {len(self.tap.captured)} frames, "
                "all payloads encrypted"
            ),
        )


class ReplayAttack:
    """Capture one protected frame on an Ethernet link and re-inject it."""

    def __init__(self, link: EthernetLink) -> None:
        self.link = link
        self.tap: FiberTap[Frame] = FiberTap(name="inline-capture")
        link.attach_tap(self.tap)

    def run(self, receiver: Optional[MacsecChannel] = None) -> AttackResult:
        """Replay the last captured frame at the receiver.

        With no MACsec receiver (plaintext link) the duplicate is accepted
        by construction. With MACsec, replay protection must reject it.
        """
        if not self.tap.captured:
            return AttackResult("replay", False, "nothing captured to replay")
        frame = self.tap.captured[-1]
        if receiver is None:
            return AttackResult(
                "replay", True,
                "plaintext link: duplicate delivered and indistinguishable",
                evidence=[f"replayed frame {frame.src}->{frame.dst}"],
            )
        try:
            receiver.validate(frame)
        except IntegrityError as exc:
            return AttackResult("replay", False, f"receiver rejected replay: {exc}")
        return AttackResult(
            "replay", True, "receiver accepted a replayed protected frame",
            evidence=[f"pn={frame.headers.get('macsec_pn')}"],
        )


class OnuImpersonationAttack:
    """Announce a victim subscriber's serial from rogue hardware."""

    def __init__(self, network: PonNetwork, victim_serial: str) -> None:
        self.network = network
        self.victim_serial = victim_serial
        self.rogue = Onu(serial=victim_serial, premises="attacker-controlled",
                         firmware=b"rogue-firmware")

    def run(self, port_index: int = 0) -> AttackResult:
        """Attempt activation. No certificate is presented (the attacker
        cloned the serial, not the keypair)."""
        try:
            gem_port = self.network.olt.activate_onu(port_index, self.rogue)
        except (AuthenticationError, NotFoundError) as exc:
            return AttackResult(
                "onu-impersonation", False, f"OLT rejected rogue device: {exc}"
            )
        return AttackResult(
            "onu-impersonation", True,
            f"rogue device activated as {self.victim_serial} on GEM port {gem_port}",
            evidence=[f"gem_port={gem_port}"],
        )


class FirmwareTamperAttack:
    """Reflash a legitimate ONU in the field (T2 at the far edge).

    The attacker has physical access to the premises device and replaces
    its firmware (keys survive: they model a flash-resident credential).
    Whether the tampered device can (re)join the PON depends on whether
    the OLT was given the golden firmware measurement at enrollment.
    """

    def __init__(self, network: PonNetwork, victim_serial: str,
                 implant: bytes = b"onu-firmware-with-traffic-siphon") -> None:
        self.network = network
        self.victim_serial = victim_serial
        self.implant = implant

    def run(self, port_index: int = 0,
            activate: Optional[object] = None) -> AttackResult:
        """Tamper and attempt re-activation.

        ``activate`` is an optional callable ``(network, onu) -> gem_port``
        performing the secure activation flow (certificate mode needs the
        channel manager); when omitted the legacy serial flow is used.
        """
        victim = self.network.onus.get(self.victim_serial)
        if victim is None:
            return AttackResult("onu-firmware-tamper", False,
                                "victim ONU not found")
        victim.flash_firmware(self.implant)
        victim.activated = False
        try:
            if activate is not None:
                activate(self.network, victim)
            else:
                self.network.olt.activate_onu(port_index, victim)
        except AuthenticationError as exc:
            return AttackResult(
                "onu-firmware-tamper", False,
                f"tampered device rejected at activation: {exc}")
        return AttackResult(
            "onu-firmware-tamper", True,
            "tampered ONU rejoined the PON and can siphon traffic",
            evidence=[f"firmware hash {victim.firmware_hash()[:12]}..."])


class DownstreamHijackAttack:
    """Inject a forged downstream GEM frame toward a victim ONU."""

    def __init__(self, network: PonNetwork, victim_serial: str,
                 forged_payload: bytes = b"FORGED: redirect traffic to attacker") -> None:
        self.network = network
        self.victim_serial = victim_serial
        self.forged_payload = forged_payload

    def run(self, port_index: int = 0) -> AttackResult:
        """Craft a GEM frame on the victim's port and inject it on-path.

        With encryption enabled the attacker cannot produce a frame that
        authenticates under the victim's key, so the ONU rejects it.
        """
        victim = self.network.onus.get(self.victim_serial)
        if victim is None:
            return AttackResult("downstream-hijack", False, "victim not on network")
        gem_port = self.network.olt.provisioned_serials.get(self.victim_serial)
        if gem_port is None:
            return AttackResult("downstream-hijack", False, "victim not provisioned")

        frame = Frame(src=self.network.olt.name, dst=self.victim_serial,
                      kind=FrameKind.DATA, payload=self.forged_payload)
        encrypted_plant = self.network.olt.encryption_enabled
        forged = GemFrame(gem_port=gem_port, inner=frame,
                          encrypted=encrypted_plant,
                          key_index=0 if not encrypted_plant else
                          self.network.olt.key_server.key_for(gem_port).index)

        before = len(victim.received)
        try:
            self.network.span(port_index).inject(forged, forged.size)
        except IntegrityError:
            pass
        accepted = [f for f in victim.received[before:]
                    if f.payload == self.forged_payload]
        if accepted:
            return AttackResult(
                "downstream-hijack", True,
                "victim ONU accepted forged downstream frame",
                evidence=[self.forged_payload.decode(errors="replace")],
            )
        return AttackResult(
            "downstream-hijack", False,
            "forged frame failed authentication at the victim ONU",
        )

"""GPON transmission-convergence security (ITU-T G.987.3 style).

G.987.3 recommends AES-based payload encryption for downstream GEM frames,
with per-ONU keys negotiated over the management channel and rotated via a
key index. This module implements that scheme over the simulation's AEAD
stand-in: the OLT holds a :class:`GponKeyServer` mapping each ONU's GEM
ports to keys; ONUs hold matching :class:`GponDecryptor` state.

Without encryption every ONU behind the splitter receives every downstream
GEM frame in cleartext (the interception threat); with it, only the ONU
holding the flow's key recovers the payload, and tampered frames are
rejected.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.common import crypto
from repro.common.errors import IntegrityError, NotFoundError
from repro.pon.frames import Frame, GemFrame


@dataclass
class GemKey:
    """A per-GEM-port encryption key with its rotation index."""

    key: bytes
    index: int = 0


class GponKeyServer:
    """OLT-side key management for downstream GEM encryption.

    Keys are established per GEM port (one or more ports per ONU) and can
    be rotated; the active key index travels in the GEM header so the ONU
    knows which key generation to use, as in G.987.3.
    """

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self._rng = rng or random.Random(0x6E10)
        self._keys: Dict[int, GemKey] = {}

    def establish(self, gem_port: int) -> GemKey:
        """Create (or return existing) key state for a GEM port."""
        if gem_port not in self._keys:
            self._keys[gem_port] = GemKey(key=crypto.random_key(self._rng))
        return self._keys[gem_port]

    def rotate(self, gem_port: int) -> GemKey:
        """Rotate the key for a GEM port, bumping its index."""
        current = self._keys.get(gem_port)
        if current is None:
            raise NotFoundError(f"no key established for GEM port {gem_port}")
        rotated = GemKey(key=crypto.random_key(self._rng), index=current.index + 1)
        self._keys[gem_port] = rotated
        return rotated

    def key_for(self, gem_port: int) -> GemKey:
        """Current key for a GEM port."""
        key = self._keys.get(gem_port)
        if key is None:
            raise NotFoundError(f"no key established for GEM port {gem_port}")
        return key

    def encrypt(self, gem: GemFrame) -> GemFrame:
        """Encrypt a downstream GEM frame's inner payload."""
        key = self.key_for(gem.gem_port)
        aad = f"{gem.gem_port}:{key.index}".encode()
        blob = crypto.aead_encrypt(key.key, gem.inner.payload, associated_data=aad)
        return GemFrame(
            gem_port=gem.gem_port,
            inner=gem.inner.with_payload(blob, secure=True),
            encrypted=True,
            key_index=key.index,
        )

    def export_key(self, gem_port: int) -> Tuple[bytes, int]:
        """Hand the current key to an ONU over the (authenticated) channel."""
        key = self.key_for(gem_port)
        return key.key, key.index


@dataclass
class GponDecryptor:
    """ONU-side decryption state for its assigned GEM ports."""

    keys: Dict[int, GemKey] = field(default_factory=dict)

    def install_key(self, gem_port: int, key: bytes, index: int) -> None:
        """Install a key delivered by the OLT's key server."""
        self.keys[gem_port] = GemKey(key=key, index=index)

    def decrypt(self, gem: GemFrame) -> Frame:
        """Recover the inner frame of an encrypted GEM frame.

        :raises NotFoundError: the ONU holds no key for this GEM port —
            i.e. the flow belongs to another subscriber.
        :raises IntegrityError: key index mismatch or tampered payload.
        """
        if not gem.encrypted:
            return gem.inner
        state = self.keys.get(gem.gem_port)
        if state is None:
            raise NotFoundError(f"no key installed for GEM port {gem.gem_port}")
        if state.index != gem.key_index:
            raise IntegrityError(
                f"key index mismatch on GEM port {gem.gem_port}: "
                f"have {state.index}, frame uses {gem.key_index}"
            )
        aad = f"{gem.gem_port}:{gem.key_index}".encode()
        plaintext = crypto.aead_decrypt(state.key, gem.inner.payload, associated_data=aad)
        return gem.inner.with_payload(plaintext, secure=False)

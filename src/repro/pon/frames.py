"""Frame formats carried on the simulated plant.

Two levels are modelled, mirroring the real stack:

* :class:`Frame` -- an Ethernet-ish frame (src/dst address, ethertype,
  payload). Used on point-to-point segments and as the payload of GEM
  frames on the PON.
* :class:`GemFrame` -- the GPON encapsulation unit (ITU-T G.987.3): a GEM
  port id identifying the logical flow, plus the encapsulated payload.
  G.987.3 encryption operates on the GEM payload.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Optional


class FrameKind(enum.Enum):
    """Coarse traffic classification used by stats and monitoring."""

    DATA = "data"
    CONTROL = "control"          # PLOAM-like management traffic
    ONBOARDING = "onboarding"    # ONU registration / activation
    KEY_EXCHANGE = "key_exchange"


@dataclass(frozen=True)
class Frame:
    """An Ethernet-level frame.

    ``secure`` marks frames whose payload is a MACsec/AEAD blob rather
    than plaintext; ``headers`` carries protocol metadata (sequence
    numbers, MACsec packet numbers, GPON key indexes) that on-path
    observers can always read — as in reality, encryption hides payloads,
    not traffic metadata.
    """

    src: str
    dst: str
    kind: FrameKind = FrameKind.DATA
    payload: bytes = b""
    secure: bool = False
    headers: Dict[str, object] = field(default_factory=dict)
    # Aggregated frames (one DBA cycle's grant carried as a single frame)
    # declare their on-the-wire size instead of materialising megabytes of
    # payload; None means "derive from the payload" as usual.
    size_override: Optional[int] = None

    def with_payload(self, payload: bytes, secure: Optional[bool] = None) -> "Frame":
        """Copy of this frame with a replaced payload."""
        return replace(self, payload=payload, secure=self.secure if secure is None else secure)

    def with_header(self, key: str, value: object) -> "Frame":
        """Copy of this frame with one header added/replaced."""
        headers = dict(self.headers)
        headers[key] = value
        return replace(self, headers=headers)

    @property
    def size(self) -> int:
        """Frame size in bytes (payload plus a nominal 18-byte header)."""
        if self.size_override is not None:
            return self.size_override
        return len(self.payload) + 18


@dataclass(frozen=True)
class GemFrame:
    """GPON Encapsulation Method frame: a flow id plus an inner frame.

    Downstream GEM frames are broadcast to every ONU on the PON; each ONU
    filters on ``gem_port``. Without payload encryption any ONU (or a
    fiber tap) can read every flow — the paper's interception threat.
    """

    gem_port: int
    inner: Frame
    encrypted: bool = False
    key_index: int = 0

    @property
    def size(self) -> int:
        """GEM frame size in bytes (inner frame plus 5-byte GEM header)."""
        return self.inner.size + 5

"""PON network assembly and traffic statistics.

Wires OLTs, fiber spans and ONUs into one plant, and provides the
measurement hooks the encryption-overhead experiment (E6) uses: frames and
bytes carried, cumulative transmission delay, and per-ONU delivery counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common import telemetry
from repro.common.clock import SimClock
from repro.common.events import EventBus
from repro.pon.fiber import EthernetLink, FiberSpan
from repro.pon.frames import Frame, FrameKind, GemFrame
from repro.pon.olt import Olt
from repro.pon.onu import Onu


@dataclass
class TrafficStats:
    """Aggregate counters for one measurement window."""

    frames_sent: int = 0
    bytes_sent: int = 0
    total_delay_s: float = 0.0
    upstream_frames: int = 0
    upstream_bytes: int = 0

    @property
    def goodput_bps(self) -> float:
        """Payload bits per second of simulated transfer time."""
        if self.total_delay_s <= 0:
            return 0.0
        return (self.bytes_sent * 8) / self.total_delay_s


class PonNetwork:
    """One OLT, its PON spans, and the ONUs behind them."""

    def __init__(
        self,
        olt: Olt,
        clock: Optional[SimClock] = None,
        bus: Optional[EventBus] = None,
    ) -> None:
        self.olt = olt
        self.clock = clock or SimClock()
        self.bus = bus or EventBus()
        self.onus: Dict[str, Onu] = {}
        self.stats = TrafficStats()
        self.uplinks: Dict[str, EthernetLink] = {}
        metrics = telemetry.active_registry()
        self._tx_delay_histogram = None if metrics is None else \
            metrics.histogram(
                "pon_tx_delay_seconds",
                "Simulated downstream transmission delay per frame.",
                buckets=(0.0001, 0.00025, 0.0005, 0.001, 0.005, 0.01))

    @classmethod
    def build(
        cls,
        olt_name: str = "olt-1",
        n_ports: int = 1,
        clock: Optional[SimClock] = None,
        bus: Optional[EventBus] = None,
        auth_mode: str = "serial",
    ) -> "PonNetwork":
        """Construct an OLT with ``n_ports`` PON spans ready for ONUs."""
        clock = clock or SimClock()
        bus = bus or EventBus()
        olt = Olt(olt_name, clock=clock, bus=bus, auth_mode=auth_mode)
        for index in range(n_ports):
            span = FiberSpan(f"{olt_name}/pon{index}", clock, bus=bus,
                             latency_s=0.0002, bandwidth_bps=10e9)
            olt.add_port(index, span)
        return cls(olt, clock=clock, bus=bus)

    def attach_onu(self, onu: Onu, port_index: int = 0, **activation_kwargs: object) -> int:
        """Provision and activate an ONU; returns its GEM port."""
        self.olt.provision_serial(onu.serial)
        gem_port = self.olt.activate_onu(port_index, onu, **activation_kwargs)
        self.onus[onu.serial] = onu
        return gem_port

    def provision_only(self, serial: str) -> int:
        """Provision a subscriber serial without activating hardware."""
        return self.olt.provision_serial(serial)

    def add_uplink(self, name: str, link: EthernetLink) -> None:
        """Attach a point-to-point uplink (inter-OLT or OLT-to-cloud)."""
        self.uplinks[name] = link

    def send_downstream(self, serial: str, payload: bytes,
                        kind: FrameKind = FrameKind.DATA, port_index: int = 0,
                        size_override: Optional[int] = None) -> float:
        """Send one downstream frame and account it in :attr:`stats`.

        Delivery is synchronous and the transmission delay is *accounted*
        (stats, histogram) but never applied to the clock — time
        advancement belongs exclusively to the scheduler in
        :mod:`repro.common.sim`, so two networks sharing a clock cannot
        skew each other's timestamps.

        ``stats.bytes_sent`` accounts the frame's actual on-the-wire size
        as reported by the OLT (post-encryption ``gem.size``), never a
        re-derived header-overhead estimate — with GEM encryption on, the
        two disagree by the AEAD expansion, and the plant stats must
        match the ``pon_bytes_total`` counter byte for byte.
        ``size_override`` mirrors :meth:`send_upstream`: an aggregated
        downstream cycle's drain travels as one frame accounting as its
        full granted size.
        """
        tx = self.olt.send_downstream(port_index, serial, payload, kind=kind,
                                      size_override=size_override)
        self.stats.frames_sent += 1
        self.stats.bytes_sent += tx.wire_bytes
        self.stats.total_delay_s += tx.delay_s
        if self._tx_delay_histogram is not None:
            self._tx_delay_histogram.observe(tx.delay_s)
        return tx.delay_s

    def send_upstream(self, serial: str, payload: bytes,
                      kind: FrameKind = FrameKind.DATA,
                      size_override: Optional[int] = None) -> None:
        """Send one upstream frame from an activated ONU to the OLT.

        ``size_override`` lets a DBA cycle's aggregated grant travel as a
        single frame that *accounts* as its full granted size without
        materialising the payload bytes.
        """
        onu = self.onus.get(serial)
        if onu is None or not onu.activated:
            raise ValueError(f"ONU {serial} is not activated on this network")
        frame = Frame(src=serial, dst=self.olt.name, kind=kind,
                      payload=payload, size_override=size_override)
        self.stats.upstream_frames += 1
        self.stats.upstream_bytes += frame.size
        self.olt.receive_upstream(frame)

    def span(self, port_index: int = 0) -> FiberSpan:
        """The fiber span of one PON port (tap attachment point)."""
        return self.olt.ports[port_index].span

    def delivered_to(self, serial: str) -> List[Frame]:
        """Frames an ONU actually received (and could decrypt)."""
        onu = self.onus.get(serial)
        return list(onu.received) if onu else []

"""Passive Optical Network (PON) substrate.

Models the fiber plant GENIO runs on: an OLT in the central office, a
passive optical splitter, and ONUs at customer premises (Figure 1 of the
paper). Downstream traffic is *broadcast* to every ONU behind the splitter
— which is exactly why the paper's T1 threats (fiber tapping, interception,
replay, ONU impersonation, downstream hijacking) are serious, and why M3
(MACsec + G.987.3 payload encryption) and M4 (PKI-based mutual
authentication) exist.

Point-to-point Ethernet segments (inter-OLT, OLT-to-cloud) are modelled by
:class:`repro.pon.fiber.EthernetLink` and protected by
:mod:`repro.pon.macsec`.
"""

from repro.pon.frames import Frame, GemFrame, FrameKind
from repro.pon.fiber import EthernetLink, FiberSpan, FiberTap
from repro.pon.onu import Onu
from repro.pon.olt import Olt, PonPort
from repro.pon.network import PonNetwork

__all__ = [
    "Frame",
    "GemFrame",
    "FrameKind",
    "EthernetLink",
    "FiberSpan",
    "FiberTap",
    "Onu",
    "Olt",
    "PonPort",
    "PonNetwork",
]

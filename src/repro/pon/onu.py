"""Optical Network Unit (ONU) model.

ONUs sit at residential/business premises — physically exposed hardware,
which is why the paper treats ONU impersonation and firmware tampering as
first-class threats. In GENIO, ONUs additionally carry low-end compute for
far-edge workloads (Figure 1).

An ONU has:

* a *serial number* — the only credential legacy GPON activation uses,
  and therefore trivially spoofable (T1);
* optionally a *device certificate* issued by the operator's PKI, used by
  the M4 mitigation for mutual authentication during onboarding;
* firmware with a measurable hash (target of T2 code tampering);
* GEM decryption state for M3 payload encryption;
* a small compute profile (CPU/memory) for far-edge workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.common import crypto
from repro.common.errors import IntegrityError, NotFoundError
from repro.pon.frames import Frame, GemFrame
from repro.pon.gpon import GponDecryptor


@dataclass
class OnuComputeProfile:
    """Far-edge compute resources available on the ONU."""

    cpu_cores: int = 2
    memory_mb: int = 1024
    storage_gb: int = 16


@dataclass
class Certificate:
    """Placeholder import point; the PKI defines the real thing.

    Kept as a forward-compatible alias so :mod:`repro.pon` does not import
    from :mod:`repro.security` (substrates never depend on the security
    layer; the dependency runs the other way).
    """

    subject: str
    public_key: object
    issuer: str
    signature: bytes
    not_before: float = 0.0
    not_after: float = float("inf")


class Onu:
    """A single ONU on the PON."""

    def __init__(
        self,
        serial: str,
        premises: str = "unspecified",
        firmware: bytes = b"onu-firmware-v1.0",
        compute: Optional[OnuComputeProfile] = None,
    ) -> None:
        if not serial:
            raise ValueError("ONU serial must be non-empty")
        self.serial = serial
        self.premises = premises
        self._firmware = firmware
        self.compute = compute or OnuComputeProfile()
        self.decryptor = GponDecryptor()
        self.gem_ports: List[int] = []
        self.activated = False
        self.identity_certificate: Optional[object] = None
        self.identity_keypair: Optional[crypto.RsaKeyPair] = None
        self.received: List[Frame] = []
        self.undecryptable = 0
        self.rejected = 0
        self._runtime = None  # lazy far-edge container runtime

    def compute_runtime(self, clock=None, bus=None):
        """The ONU's far-edge container runtime (created on first use).

        GENIO ONUs carry low-end compute for ultra-low-latency workloads
        (Figure 1); this exposes it through the same runtime abstraction
        the OLT worker VMs use, so M16-M18 apply at the far edge too.
        """
        if self._runtime is None:
            from repro.virt.runtime import ContainerRuntime
            self._runtime = ContainerRuntime(
                node_name=f"onu/{self.serial}",
                cpu_capacity=float(self.compute.cpu_cores),
                memory_capacity_mb=float(self.compute.memory_mb),
                clock=clock, bus=bus)
        return self._runtime

    # -- firmware (T2 target) ------------------------------------------------

    @property
    def firmware(self) -> bytes:
        return self._firmware

    def firmware_hash(self) -> str:
        """Measured firmware hash, as attested during secure onboarding."""
        return crypto.sha256_hex(self._firmware)

    def flash_firmware(self, image: bytes) -> None:
        """Replace firmware — legitimate update or T2 tampering alike."""
        self._firmware = image

    # -- identity -------------------------------------------------------------

    def provision_identity(self, keypair: crypto.RsaKeyPair, certificate: object) -> None:
        """Install the PKI credential used for M4 mutual authentication."""
        self.identity_keypair = keypair
        self.identity_certificate = certificate

    # -- traffic --------------------------------------------------------------

    def assign_gem_port(self, gem_port: int) -> None:
        if gem_port not in self.gem_ports:
            self.gem_ports.append(gem_port)

    def receive_gem(self, gem: GemFrame) -> Optional[Frame]:
        """Handle a broadcast downstream GEM frame.

        Frames for other subscribers' GEM ports are filtered (or, if
        encrypted, undecryptable); frames for this ONU's ports are
        delivered to :attr:`received`.
        """
        if gem.gem_port not in self.gem_ports:
            if gem.encrypted:
                self.undecryptable += 1
            return None
        try:
            frame = self.decryptor.decrypt(gem)
        except (IntegrityError, NotFoundError):
            # Forged or corrupted frame: drop and count, as real hardware
            # does — one bad frame must not wedge the receive path.
            self.rejected += 1
            return None
        self.received.append(frame)
        return frame

    def __repr__(self) -> str:
        return f"Onu(serial={self.serial!r}, activated={self.activated})"

"""Fiber spans, Ethernet links, and taps.

The physical layer of the simulation. A :class:`FiberSpan` carries GEM
frames between the OLT and the splitter/ONUs; an :class:`EthernetLink`
carries Ethernet frames point-to-point (inter-OLT, OLT-to-cloud). Both
support :class:`FiberTap` attachment — the paper's physical-tampering
vector (T1): a bend coupler on the fiber gives an attacker a copy of every
frame in flight. Taps are *passive* (copy) but links also expose
``inject`` so active on-path attacks (replay, hijack) can be expressed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generic, List, Optional, TypeVar

from repro.common.clock import SimClock
from repro.common.events import EventBus

FrameT = TypeVar("FrameT")


@dataclass
class FiberTap(Generic[FrameT]):
    """A passive optical tap: receives a copy of every frame on the link."""

    name: str
    captured: List[FrameT] = field(default_factory=list)

    def observe(self, frame: FrameT) -> None:
        self.captured.append(frame)

    def clear(self) -> None:
        self.captured.clear()


class _Link(Generic[FrameT]):
    """Shared machinery for fiber spans and Ethernet links."""

    def __init__(
        self,
        name: str,
        clock: SimClock,
        bus: Optional[EventBus] = None,
        latency_s: float = 0.0002,
        bandwidth_bps: float = 10e9,
    ) -> None:
        if latency_s < 0 or bandwidth_bps <= 0:
            raise ValueError("latency must be >= 0 and bandwidth > 0")
        self.name = name
        self._clock = clock
        self._bus = bus
        self.latency_s = latency_s
        self.bandwidth_bps = bandwidth_bps
        self._taps: List[FiberTap[FrameT]] = []
        self._receivers: List[Callable[[FrameT], None]] = []
        self.frames_carried = 0
        self.bytes_carried = 0

    def attach_tap(self, tap: FiberTap[FrameT]) -> None:
        """Splice a passive tap into the span (the T1 physical attack)."""
        self._taps.append(tap)

    def detach_tap(self, tap: FiberTap[FrameT]) -> None:
        if tap in self._taps:
            self._taps.remove(tap)

    def attach_receiver(self, receiver: Callable[[FrameT], None]) -> None:
        """Register the legitimate endpoint(s) of the link."""
        self._receivers.append(receiver)

    def transmit(self, frame: FrameT, size: int) -> float:
        """Carry ``frame`` to every receiver and tap.

        Returns the transmission delay in seconds (latency + serialisation)
        so callers can account time without blocking the simulation.
        """
        self.frames_carried += 1
        self.bytes_carried += size
        for tap in self._taps:
            tap.observe(frame)
        for receiver in list(self._receivers):
            receiver(frame)
        if self._bus is not None:
            self._bus.emit(
                "pon.link", self.name, self._clock.now,
                frames=self.frames_carried, size=size,
            )
        return self.latency_s + (size * 8) / self.bandwidth_bps

    def inject(self, frame: FrameT, size: int) -> float:
        """Active on-path injection: identical delivery, flagged in stats."""
        return self.transmit(frame, size)

    @property
    def tapped(self) -> bool:
        """True if at least one tap is spliced in."""
        return bool(self._taps)


class FiberSpan(_Link):
    """Optical span carrying GEM frames (OLT <-> splitter <-> ONUs)."""


class EthernetLink(_Link):
    """Point-to-point Ethernet segment (inter-OLT, OLT-to-cloud)."""

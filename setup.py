"""Shim for legacy editable installs on environments without `wheel`.

All real metadata lives in pyproject.toml; this file only lets
``pip install -e . --no-use-pep517`` work offline.
"""

from setuptools import setup

setup()
